// The unified execution API: one typed Request describing what to run
// (mode, query or transaction mix, clients, partitioning, geometry) and
// one Result carrying every measurement the drivers report. Runner.Run
// is the single entry point behind cmd/cmpsim, cmd/benchjson, and
// cmd/dbserver; the historical multi-return experiment functions
// (VectorizedSpeedup, SharedSpeedup, ParallelSpeedup, StagedOLTPSpeedup,
// StagedOLTPScaling) survive as thin deprecated wrappers over it.

package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/oltp"
	"repro/internal/share"
	"repro/internal/sim"
)

// Mode names one execution mode of the unified request API.
type Mode string

// The four request modes. Every mode is a paired measurement: the
// subject execution and its reference twin on identical chip geometry.
const (
	// ModeVecDSS runs one serial DSS query on the vectorized executor
	// against the row-at-a-time reference path.
	ModeVecDSS Mode = "vec-dss"
	// ModeSharedDSS runs K concurrent DSS clients through the circular
	// shared-scan registry against K private scans.
	ModeSharedDSS Mode = "shared-dss"
	// ModeParallelDSS runs one DSS query on the morsel-driven parallel
	// executor across a sweep of worker counts.
	ModeParallelDSS Mode = "parallel-dss"
	// ModeStagedOLTP runs a deterministic transaction batch on the
	// cohort-scheduled staged executor (optionally partitioned) against
	// the monolithic reference, digests checked byte-identical.
	ModeStagedOLTP Mode = "staged-oltp"
)

// ParseMode maps a wire/flag string onto a Mode.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeVecDSS, ModeSharedDSS, ModeParallelDSS, ModeStagedOLTP:
		return Mode(s), nil
	}
	return "", &ValidationError{Field: "mode", Reason: fmt.Sprintf("unknown mode %q (have vec-dss, shared-dss, parallel-dss, staged-oltp)", s)}
}

// ValidationError reports a request or option field that fails
// validation before any simulation work starts.
type ValidationError struct {
	Field  string
	Reason string
}

func (e *ValidationError) Error() string {
	return "core: invalid " + e.Field + ": " + e.Reason
}

// Request describes one unified-API execution. The zero value of every
// field means "mode default"; WithDefaults resolves them in one place.
type Request struct {
	Mode Mode

	// Query is the DSS analog: 1, 6, or 13 (shared-dss also accepts 0
	// for the Q1/Q6/Q13 mix). Default 6.
	Query int
	// Clients is the shared-dss consumer count or the staged-oltp
	// logical client-stream count. Default 8.
	Clients int
	// Workers is the parallel-dss target worker count. Default 4.
	Workers int
	// WorkerCounts optionally sweeps parallel-dss worker counts on one
	// pinned chip geometry. Default {1, Workers}.
	WorkerCounts []int
	// Txns is transactions per staged-oltp client. Default 8.
	Txns int
	// Cohort is the staged-oltp in-flight window. Default 16.
	Cohort int
	// Parts partitions the staged-oltp cohort side by home warehouse.
	// Default 1.
	Parts int
	// PartCounts optionally sweeps staged-oltp partition counts against
	// one monolithic reference. Default {Parts}.
	PartCounts []int
	// RemotePct is the staged-oltp cross-warehouse draw percentage.
	RemotePct int
	// NativeWorkers, when non-empty, additionally runs the query natively
	// on the host (trace-free, wall-clock timed) at each listed worker
	// count, populating Result.Native. DSS modes with a single query only.
	NativeWorkers []int
	// NativeZeroCopy additionally measures each native worker count with
	// borrowed page-aliasing scan blocks, recording the copy-vs-borrow
	// pair side by side. Requires NativeWorkers.
	NativeZeroCopy bool
	// JoinMode pins the hash-join strategy of joining plans (Q13):
	// "chained", "partitioned", "prefetch", or ""/"auto" for the
	// build-size policy. Applies to both the traced runs and the native
	// sweep.
	JoinMode string
	// Seed drives every deterministic input stream. Default 7.
	Seed int64
	// Cell overrides the chip geometry; nil picks DefaultModeCell on the
	// fat camp.
	Cell *Cell
	// Trace collects dual-clock spans (Result.Traces) for the subject
	// executions. Off by default: span markers in the trace stream shift
	// chunk boundaries, so traced and untraced runs are separate
	// experiments — never compare cycles across the two.
	Trace bool
}

// DefaultModeCell is the baseline geometry for mode on camp: the paper's
// 4-core chip with the mode's functional-warming budget (heavy warming
// would consume a whole measured run for the short-trace modes).
func DefaultModeCell(mode Mode, camp sim.Camp) Cell {
	switch mode {
	case ModeStagedOLTP:
		c := DefaultCell(camp, OLTP, false)
		c.WarmRefs = 10000
		return c
	case ModeVecDSS:
		c := DefaultCell(camp, DSS, true)
		c.WarmRefs = 5000
		return c
	case ModeParallelDSS:
		c := DefaultCell(camp, DSS, true)
		c.WarmRefs = 50000
		return c
	default: // ModeSharedDSS and unknown: the multi-client DSS baseline.
		c := DefaultCell(camp, DSS, true)
		c.WarmRefs = 20000
		return c
	}
}

// WithDefaults resolves every zero-valued field to its mode default,
// including materializing the geometry cell. Negative values are left in
// place for Validate to reject.
func (q Request) WithDefaults() Request {
	if q.Query == 0 && q.Mode != ModeSharedDSS {
		q.Query = 6
	}
	if q.Clients == 0 {
		q.Clients = 8
	}
	if q.Workers == 0 {
		q.Workers = 4
	}
	if q.Txns == 0 {
		q.Txns = 8
	}
	if q.Cohort == 0 {
		q.Cohort = 16
	}
	if q.Parts == 0 {
		q.Parts = 1
	}
	if q.Seed == 0 {
		q.Seed = 7
	}
	if q.Mode == ModeParallelDSS && len(q.WorkerCounts) == 0 {
		q.WorkerCounts = []int{1, q.Workers}
	}
	if q.Mode == ModeStagedOLTP && len(q.PartCounts) == 0 {
		q.PartCounts = []int{q.Parts}
	}
	if q.Cell == nil {
		cell := DefaultModeCell(q.Mode, sim.FatCamp)
		q.Cell = &cell
	}
	return q
}

// Validate rejects an unrunnable request with a *ValidationError. It
// assumes WithDefaults has resolved zero values; Run applies both.
func (q Request) Validate() error {
	if _, err := ParseMode(string(q.Mode)); err != nil {
		return err
	}
	switch q.Mode {
	case ModeVecDSS, ModeParallelDSS:
		if q.Query != 1 && q.Query != 6 && q.Query != 13 {
			return &ValidationError{Field: "query", Reason: fmt.Sprintf("query %d (have 1, 6, 13)", q.Query)}
		}
	case ModeSharedDSS:
		if q.Query != 0 && q.Query != 1 && q.Query != 6 && q.Query != 13 {
			return &ValidationError{Field: "query", Reason: fmt.Sprintf("query %d (have 1, 6, 13, or 0 for the mix)", q.Query)}
		}
	}
	if q.Clients < 1 {
		return &ValidationError{Field: "clients", Reason: fmt.Sprintf("%d clients (need >= 1)", q.Clients)}
	}
	if q.Workers < 1 {
		return &ValidationError{Field: "workers", Reason: fmt.Sprintf("%d workers (need >= 1)", q.Workers)}
	}
	for _, n := range q.WorkerCounts {
		if n < 1 {
			return &ValidationError{Field: "workers", Reason: fmt.Sprintf("worker count %d (need >= 1)", n)}
		}
	}
	if len(q.NativeWorkers) > 0 {
		if q.Mode == ModeStagedOLTP {
			return &ValidationError{Field: "native_workers", Reason: "native execution is DSS-only (staged-oltp has no native path)"}
		}
		if q.Query != 1 && q.Query != 6 && q.Query != 13 {
			return &ValidationError{Field: "native_workers", Reason: fmt.Sprintf("native execution needs a single query 1, 6, or 13 (query %d)", q.Query)}
		}
		for _, n := range q.NativeWorkers {
			if n < 1 {
				return &ValidationError{Field: "native_workers", Reason: fmt.Sprintf("native worker count %d (need >= 1)", n)}
			}
		}
	}
	if q.NativeZeroCopy && len(q.NativeWorkers) == 0 {
		return &ValidationError{Field: "native_zero_copy", Reason: "zero-copy native measurement needs native_workers"}
	}
	if _, err := engine.ParseJoinMode(q.JoinMode); err != nil {
		return &ValidationError{Field: "join_mode", Reason: err.Error()}
	}
	if q.Mode == ModeStagedOLTP {
		o := q.stagedOpts(q.Parts)
		if err := o.Validate(); err != nil {
			return err
		}
		for _, p := range q.PartCounts {
			if err := q.stagedOpts(p).Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// joinMode returns the request's parsed hash-join strategy (Validate has
// already rejected unparseable values; a bad string here degrades to
// auto).
func (q Request) joinMode() engine.JoinMode {
	m, _ := engine.ParseJoinMode(q.JoinMode)
	return m
}

// stagedOpts maps the request onto the staged-OLTP option block at one
// partition count.
func (q Request) stagedOpts(parts int) StagedOLTPOpts {
	return StagedOLTPOpts{
		Clients: q.Clients, PerClient: q.Txns, Cohort: q.Cohort,
		Seed: q.Seed, Parts: parts, RemotePct: q.RemotePct, Trace: q.Trace,
	}.WithDefaults()
}

// Side is one traced execution inside a Result: the measured subject,
// its reference twin, or one sweep point.
type Side struct {
	// Label names the execution: "row", "vectorized", "unshared",
	// "shared", "parallel-N", "monolithic", "cohort-N".
	Label  string
	Cycles uint64
	Result sim.Result
	// Rows is DSS result rows; Txns is OLTP transactions committed.
	Rows int
	Txns int
	// Digest fingerprints the execution's logical output: the database
	// StateDigest for OLTP, RowsDigest of the result set for serial DSS,
	// a row-count digest for parallel DSS (float addition order varies
	// with morsel claiming, so value bits are not comparable).
	Digest uint64
	// Workers / Parts identify the sweep point where applicable.
	Workers int
	Parts   int
	Fenced  int
	Sched   oltp.Stats
	PerPart []oltp.Stats
	Scans   share.Stats
	Reuse   share.CacheStats
}

// Stalls is the wire/report-friendly cycle-accounting breakdown of one
// execution: aggregate core cycles by the paper's stall taxonomy, summed
// over active cores for the measured window.
type Stalls struct {
	Computation uint64 `json:"computation"`
	IStallL2    uint64 `json:"istall_l2"`
	IStallMem   uint64 `json:"istall_mem"`
	DStallL2    uint64 `json:"dstall_l2"`
	DStallMem   uint64 `json:"dstall_mem"`
	DStallCoh   uint64 `json:"dstall_coh"`
	Other       uint64 `json:"other"`
	Idle        uint64 `json:"idle"`
	// Busy is the non-idle total — the denominator of the paper's
	// execution-time breakdowns.
	Busy uint64 `json:"busy"`
}

// StallsOf flattens a simulator breakdown into the wire form.
func StallsOf(r sim.Result) Stalls {
	b := r.Breakdown
	return Stalls{
		Computation: b.Cycles[sim.KindComp],
		IStallL2:    b.Cycles[sim.KindIStallL2],
		IStallMem:   b.Cycles[sim.KindIStallMem],
		DStallL2:    b.Cycles[sim.KindDStallL2],
		DStallMem:   b.Cycles[sim.KindDStallMem],
		DStallCoh:   b.Cycles[sim.KindDStallCoh],
		Other:       b.Cycles[sim.KindOther],
		Idle:        b.Cycles[sim.KindIdle],
		Busy:        b.Busy(),
	}
}

// Stalls returns this side's cycle-accounting breakdown.
func (s Side) Stalls() Stalls { return StallsOf(s.Result) }

// IStallFrac is the fraction of busy cycles lost to instruction stalls.
func (s Side) IStallFrac() float64 {
	busy := s.Result.Breakdown.Busy()
	if busy == 0 {
		return 0
	}
	return float64(s.Result.Breakdown.IStalls()) / float64(busy)
}

// PerMcycle is work units (rows' queries or transactions) completed per
// million simulated cycles.
func (s Side) PerMcycle(units int) float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(units) * 1e6 / float64(s.Cycles)
}

// Result is one unified-API measurement: the subject side, its reference
// twin, and (for sweeping modes) every sweep point.
type Result struct {
	Mode Mode
	// Request echoes the fully-defaulted request that ran.
	Request Request
	// Baseline is the reference execution: row-at-a-time, unshared,
	// the first worker count, or the monolithic transaction path.
	Baseline Side
	// Main is the subject: vectorized, shared, the last worker count, or
	// the cohort side at the last partition count.
	Main Side
	// Sweep holds every sweep point for parallel-dss (worker counts) and
	// staged-oltp (partition counts); Main aliases the last entry.
	Sweep []Side
	// SpeedupX is Baseline cycles over Main cycles.
	SpeedupX float64
	// ScalingX is each sweep point's cycle speedup over Sweep[0].
	ScalingX []float64
	// L1IMissReductionX is the staged-oltp instruction-miss payoff:
	// monolithic L1I misses over cohort L1I misses.
	L1IMissReductionX float64
	// Digest is Main.Digest: the value the server's byte-identity
	// acceptance compares against batch runs.
	Digest uint64
	// Traces holds one dual-clock span run per traced execution when
	// Request.Trace is set (subject sides; sweep modes collect one per
	// sweep point). Exportable as Chrome trace-event JSON via
	// obs.WriteChrome.
	Traces []obs.Run
	// Native holds the host-execution sweep when Request.NativeWorkers is
	// set: the interpreted 1-worker reference first, then one compiled
	// point per requested worker count (wall-clock, best of 50) — two per
	// count when NativeZeroCopy also measures the borrowed flavor.
	Native []NativeRun
	// NativeRows / NativeRowsPerSec headline the best compiled native
	// point: base-table rows scanned and host throughput.
	NativeRows       int
	NativeRowsPerSec float64
}

// Run executes one unified request: it applies defaults, validates, runs
// the mode's paired measurement on identical chip geometry, and returns
// the typed result. DSS comparison sides are measured twice and the
// faster run kept (live trace production makes a descheduled goroutine
// look slow); staged-oltp digests are checked byte-identical against the
// monolithic reference. ctx cancels between sub-runs (a simulated run in
// flight is not interrupted).
func (r *Runner) Run(ctx context.Context, req Request) (Result, error) {
	req = req.WithDefaults()
	if err := req.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Mode: req.Mode, Request: req}
	var err error
	switch req.Mode {
	case ModeVecDSS:
		err = r.runVecPair(ctx, req, &res)
	case ModeSharedDSS:
		err = r.runSharedPair(ctx, req, &res)
	case ModeParallelDSS:
		err = r.runParallelSweep(ctx, req, &res)
	case ModeStagedOLTP:
		err = r.runStagedSweep(ctx, req, &res)
	}
	if err != nil {
		return Result{}, err
	}
	res.Digest = res.Main.Digest
	if res.Main.Cycles > 0 {
		res.SpeedupX = float64(res.Baseline.Cycles) / float64(res.Main.Cycles)
	}
	if len(req.NativeWorkers) > 0 {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		native, err := r.RunNativeDSS(req.Query, req.NativeWorkers, req.Seed, req.NativeZeroCopy, req.joinMode())
		if err != nil {
			return Result{}, err
		}
		res.Native = native
		for _, n := range native {
			if !n.Interpreted && n.RowsPerSec > res.NativeRowsPerSec {
				res.NativeRows, res.NativeRowsPerSec = n.Rows, n.RowsPerSec
			}
		}
	}
	return res, nil
}

func (r *Runner) runVecPair(ctx context.Context, req Request, res *Result) error {
	measure := func(vectorized bool) (VecDSSResult, error) {
		if err := ctx.Err(); err != nil {
			return VecDSSResult{}, err
		}
		best, err := r.RunVecDSS(*req.Cell, req.Query, vectorized, req.Seed, req.joinMode())
		if err != nil {
			return best, err
		}
		again, err := r.RunVecDSS(*req.Cell, req.Query, vectorized, req.Seed, req.joinMode())
		if err != nil {
			return best, err
		}
		if again.Cycles < best.Cycles {
			best = again
		}
		return best, nil
	}
	row, err := measure(false)
	if err != nil {
		return err
	}
	vec, err := measure(true)
	if err != nil {
		return err
	}
	res.Baseline = vecSide(row)
	res.Main = vecSide(vec)
	if req.Trace {
		// The vectorized executor has no span plumbing yet: synthesize
		// root-only runs so trace exports treat every mode uniformly.
		res.Traces = append(res.Traces,
			syntheticRun(res.Baseline.Label, res.Baseline.Cycles),
			syntheticRun(res.Main.Label, res.Main.Cycles))
	}
	return nil
}

// syntheticRun builds a root-only trace for executors without span
// plumbing: one run span covering [0, cycles].
func syntheticRun(label string, cycles uint64) obs.Run {
	t := obs.NewTracer()
	sp := t.BeginAt(0, 0, label, "run")
	t.StampStart(sp, 0)
	sp.EndAt(cycles)
	return t.Snapshot(label, cycles)
}

func vecSide(v VecDSSResult) Side {
	label := "row"
	if v.Vectorized {
		label = "vectorized"
	}
	return Side{Label: label, Cycles: v.Cycles, Result: v.Result, Rows: v.Rows, Digest: v.Digest}
}

func (r *Runner) runSharedPair(ctx context.Context, req Request, res *Result) error {
	measure := func(shared bool) (SharedDSSResult, error) {
		if err := ctx.Err(); err != nil {
			return SharedDSSResult{}, err
		}
		best, err := r.RunSharedDSSTraced(*req.Cell, req.Query, req.Clients, shared, req.Seed, req.Trace)
		if err != nil {
			return best, err
		}
		again, err := r.RunSharedDSSTraced(*req.Cell, req.Query, req.Clients, shared, req.Seed, req.Trace)
		if err != nil {
			return best, err
		}
		if again.Cycles < best.Cycles {
			best = again
		}
		return best, nil
	}
	un, err := measure(false)
	if err != nil {
		return err
	}
	sh, err := measure(true)
	if err != nil {
		return err
	}
	res.Baseline = sharedSide(un)
	res.Main = sharedSide(sh)
	for _, v := range []SharedDSSResult{un, sh} {
		if v.Trace != nil {
			res.Traces = append(res.Traces, *v.Trace)
		}
	}
	return nil
}

func sharedSide(v SharedDSSResult) Side {
	label := "unshared"
	if v.Shared {
		label = "shared"
	}
	return Side{
		Label: label, Cycles: v.Cycles, Result: v.Result, Rows: v.Rows,
		Digest: v.Digest, Scans: v.Scans, Reuse: v.Cache,
	}
}

func (r *Runner) runParallelSweep(ctx context.Context, req Request, res *Result) error {
	// One pinned geometry for every count, so the ratio measures
	// executor scaling, not hardware scaling.
	cell := *req.Cell
	for _, n := range req.WorkerCounts {
		if cell.Cores < n {
			cell.Cores = n
		}
	}
	for _, n := range req.WorkerCounts {
		if err := ctx.Err(); err != nil {
			return err
		}
		best, err := r.RunParallelDSS(cell, req.Query, n, req.Seed, req.joinMode())
		if err != nil {
			return err
		}
		again, err := r.RunParallelDSS(cell, req.Query, n, req.Seed, req.joinMode())
		if err != nil {
			return err
		}
		if again.Cycles < best.Cycles {
			best = again
		}
		res.Sweep = append(res.Sweep, Side{
			Label: fmt.Sprintf("parallel-%d", n), Cycles: best.Cycles,
			Result: best.Result, Rows: best.Rows, Digest: best.Digest, Workers: n,
		})
		if req.Trace {
			// The morsel-driven executor has no span plumbing yet.
			res.Traces = append(res.Traces, syntheticRun(fmt.Sprintf("parallel-%d", n), best.Cycles))
		}
	}
	res.Baseline = res.Sweep[0]
	res.Main = res.Sweep[len(res.Sweep)-1]
	for _, s := range res.Sweep {
		res.ScalingX = append(res.ScalingX, float64(res.Sweep[0].Cycles)/float64(max(s.Cycles, 1)))
	}
	return nil
}

func (r *Runner) runStagedSweep(ctx context.Context, req Request, res *Result) error {
	mono, err := r.RunStagedOLTP(*req.Cell, false, req.stagedOpts(1))
	if err != nil {
		return err
	}
	res.Baseline = stagedSide(mono)
	if mono.Trace != nil {
		res.Traces = append(res.Traces, *mono.Trace)
	}
	for _, p := range req.PartCounts {
		if err := ctx.Err(); err != nil {
			return err
		}
		run, err := r.RunStagedOLTP(*req.Cell, true, req.stagedOpts(p))
		if err != nil {
			return err
		}
		if run.Digest != mono.Digest {
			return fmt.Errorf(
				"core: staged OLTP digest mismatch at parts=%d: %#x vs monolithic %#x (determinism contract violated)",
				p, run.Digest, mono.Digest)
		}
		res.Sweep = append(res.Sweep, stagedSide(run))
		if run.Trace != nil {
			res.Traces = append(res.Traces, *run.Trace)
		}
	}
	res.Main = res.Sweep[len(res.Sweep)-1]
	for _, s := range res.Sweep {
		res.ScalingX = append(res.ScalingX, float64(res.Sweep[0].Cycles)/float64(max(s.Cycles, 1)))
	}
	res.L1IMissReductionX = float64(mono.Result.Cache.L1IMisses) /
		float64(max(res.Main.Result.Cache.L1IMisses, 1))
	return nil
}

func stagedSide(v StagedOLTPResult) Side {
	label := "monolithic"
	if v.Cohorted {
		label = fmt.Sprintf("cohort-%d", v.Parts)
	}
	return Side{
		Label: label, Cycles: v.Cycles, Result: v.Result, Txns: v.Txns,
		Digest: v.Digest, Parts: v.Parts, Fenced: v.Fenced,
		Sched: v.Sched, PerPart: v.PerPart,
	}
}

// stagedResult reconstructs the legacy StagedOLTPResult from a Side for
// the deprecated wrappers.
func (s Side) stagedResult() StagedOLTPResult {
	return StagedOLTPResult{
		Cohorted: s.Label != "monolithic", Parts: s.Parts, Cycles: s.Cycles,
		Result: s.Result, Txns: s.Txns, Digest: s.Digest,
		Sched: s.Sched, PerPart: s.PerPart, Fenced: s.Fenced,
	}
}

// RowsDigest fingerprints a result set: FNV-1a over each row's typed
// values in row order. Two executions that produce the same rows in the
// same order produce the same digest.
func RowsDigest(rows [][]engine.Value) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, row := range rows {
		for _, v := range row {
			buf[0] = byte(v.Kind)
			h.Write(buf[:1])
			switch v.Kind {
			case engine.TFloat:
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F))
				h.Write(buf[:])
			case engine.TChar:
				h.Write([]byte(v.S))
			default:
				binary.LittleEndian.PutUint64(buf[:], uint64(v.I))
				h.Write(buf[:])
			}
		}
		buf[0] = 0xfe // row separator
		h.Write(buf[:1])
	}
	return h.Sum64()
}

// countDigest fingerprints a bare row count (parallel runs, whose float
// addition order is not reproducible bit-for-bit).
func countDigest(rows int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(rows))
	h.Write(buf[:])
	return h.Sum64()
}
