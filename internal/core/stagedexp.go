package core

import (
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/staged"
	"repro/internal/trace"
)

// StagedResult is one execution mode of the Section 6 experiment.
type StagedResult struct {
	Mode string
	// Cycles to process the input (response time).
	Cycles uint64
	// Breakdown fractions of busy cycles.
	CompFrac, IStallFrac, DStallL2Frac float64
	// L1DHitRate over the run.
	L1DHitRate float64
	Rows       int
}

// stagedPlan builds the experiment's pipeline pieces over lineitem:
// scan → filter(shipdate) → group-by-suppkey sum(extendedprice).
func stagedPlan(h *engineTPCH, rows int) (engine.Op, []engine.Pred) {
	ls := h.lineitem.Schema
	preds := []engine.Pred{engine.PredInt(ls.Col("l_shipdate"), engine.LE, dateCut)}
	src := engine.Op(&engine.SeqScan{Table: h.lineitem})
	if rows > 0 {
		src = &engine.Limit{Child: src, N: rows}
	}
	return src, preds
}

// The staged experiment's fixed date cutoff (~75% selectivity).
const dateCut = 1920

// engineTPCH is the minimal view of workload.TPCH the experiment needs;
// defined via an accessor to avoid exporting table internals.
type engineTPCH struct {
	lineitem *engine.Table
	db       *engine.DB
}

// StagedExperiment compares monolithic Volcano execution against the
// staged executors of Section 6.3 on an FC CMP:
//
//	volcano          — one thread pulls tuple-at-a-time through the plan
//	staged-affinity  — one thread, packet-at-a-time (STEPS-style batching)
//	staged-parallel  — packet pool: a source worker plus stage-chain
//	                   consumers, each on its own FC core
//	staged-colocated — the same pool packed onto three contexts of ONE
//	                   LC core (packets stay core-local)
//
// The parallel/colocated pair contrasts spreading the pool across cores
// (parallelism, packets cross the L2) against packing it on one core
// (locality, packets stay L1-resident but contexts time-share).
// rows caps the lineitem prefix processed (0 = 150000).
func (r *Runner) StagedExperiment(rows int) ([]StagedResult, error) {
	if rows == 0 {
		rows = 150000
	}
	h, err := r.TPCH()
	if err != nil {
		return nil, err
	}
	lineitem := h.Lineitem()
	et := &engineTPCH{lineitem: lineitem, db: h.DB}

	var out []StagedResult

	// Mode 1: monolithic Volcano plan on one FC core. A pass-through Map
	// counts the rows reaching the aggregate so all modes report the same
	// work unit (rows absorbed by the final operator).
	{
		src, preds := stagedPlan(et, rows)
		ls := lineitem.Schema
		n := 0
		counted := &engine.Map{
			Child: &engine.Filter{Child: src, Preds: preds},
			Out:   ls,
			Fn: func(in, out []byte) {
				copy(out, in)
				n++
			},
			Cost: 1,
		}
		plan := &engine.HashAgg{
			Child:     counted,
			GroupCols: []int{ls.Col("l_suppkey")},
			Aggs:      []engine.AggSpec{{Func: engine.Sum, Col: ls.Col("l_extendedprice"), Name: "rev"}},
			Expected:  4096,
		}
		res, err := r.stagedRun("volcano", sim.FatCamp, func(ctxs []*engine.Ctx) (int, error) {
			err := engine.Run(ctxs[0], plan, nil)
			return n, err
		}, 1, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}

	// Mode 2: staged, packet-at-a-time on one FC core (affinity).
	{
		res, err := r.stagedRun("staged-affinity", sim.FatCamp, func(ctxs []*engine.Ctx) (int, error) {
			src, preds := stagedPlan(et, rows)
			pl := &staged.Pipeline{
				DB:     et.db,
				Source: src,
				Stages: []staged.Stage{staged.FilterStage(et.db, lineitem.Schema, preds)},
				Sink:   r.stagedSink(ctxs[0], et),
			}
			return pl.RunAffinity(ctxs[0])
		}, 1, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}

	// Mode 3: staged pool (source + two consumers) on three FC cores.
	{
		res, err := r.stagedRun("staged-parallel", sim.FatCamp, func(ctxs []*engine.Ctx) (int, error) {
			src, preds := stagedPlan(et, rows)
			pl := &staged.Pipeline{
				DB:     et.db,
				Source: src,
				Stages: []staged.Stage{staged.FilterStage(et.db, lineitem.Schema, preds)},
				Sink:   r.stagedSink(ctxs[2], et),
			}
			return pl.RunParallel(ctxs)
		}, 3, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}

	// Mode 4: the same pool on three contexts of ONE LC core, so
	// producers and consumers share that core's L1s (the paper's
	// co-location lever, applied to the pool's workers).
	{
		placement := []int{0, 4, 8} // contexts 0,1,2 of core 0 (4-core LC)
		res, err := r.stagedRun("staged-colocated", sim.LeanCamp, func(ctxs []*engine.Ctx) (int, error) {
			src, preds := stagedPlan(et, rows)
			pl := &staged.Pipeline{
				DB:     et.db,
				Source: src,
				Stages: []staged.Stage{staged.FilterStage(et.db, lineitem.Schema, preds)},
				Sink:   r.stagedSink(ctxs[2], et),
			}
			return pl.RunParallel(ctxs)
		}, 3, placement)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

func (r *Runner) stagedSink(ctx *engine.Ctx, et *engineTPCH) staged.Sink {
	ls := et.lineitem.Schema
	return staged.NewAggSink(ctx, et.db, ls, ls.Col("l_suppkey"), ls.Col("l_extendedprice"))
}

// stagedRun executes fn's workers on a fresh chip, one trace per worker.
func (r *Runner) stagedRun(mode string, camp sim.Camp, fn func([]*engine.Ctx) (int, error), workers int, placement []int) (StagedResult, error) {
	h, err := r.TPCH()
	if err != nil {
		return StagedResult{}, err
	}
	cell := DefaultCell(camp, DSS, true)
	chip := sim.NewChip(cell.SimConfig())

	ctxs := make([]*engine.Ctx, workers)
	recs := make([]*trace.Recorder, workers)
	streams := make([]*trace.Stream, workers)
	for i := 0; i < workers; i++ {
		rec, s := trace.Pipe()
		recs[i], streams[i] = rec, s
		ctxs[i] = h.DB.NewCtx(rec, 32+i, 64<<20)
		if placement != nil {
			chip.AddThreadAt(s, placement[i])
		} else {
			chip.AddThread(s)
		}
	}

	var rows int
	var runErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rows, runErr = fn(ctxs)
		for _, rec := range recs {
			rec.Close()
		}
	}()

	chip.Warm(50000)
	res := chip.Run(1 << 34)
	for _, s := range streams {
		s.Stop()
		for {
			if _, ok := s.Next(); !ok {
				break
			}
		}
	}
	wg.Wait()
	if runErr != nil {
		return StagedResult{}, fmt.Errorf("core: staged mode %s: %w", mode, runErr)
	}

	var last uint64
	for _, d := range res.ThreadDone {
		if d > last {
			last = d
		}
	}
	if last == 0 {
		last = res.Cycles
	}
	st := res.Cache
	hitRate := 0.0
	if tot := st.L1DHits + st.L1DMisses; tot > 0 {
		hitRate = float64(st.L1DHits) / float64(tot)
	}
	busy := float64(res.Breakdown.Busy())
	sr := StagedResult{Mode: mode, Cycles: last, Rows: rows, L1DHitRate: hitRate}
	if busy > 0 {
		sr.CompFrac = float64(res.Breakdown.Computation()) / busy
		sr.IStallFrac = float64(res.Breakdown.IStalls()) / busy
		sr.DStallL2Frac = float64(res.Breakdown.DStallL2()) / busy
	}
	return sr, nil
}
