// Intra-query parallelism experiments: one DSS query executed by the
// morsel-driven parallel executor, each worker bound to its own hardware
// context of a fresh simulated chip. Cycles-to-completion across worker
// counts measures how much of the chip a single query can use — the
// restructuring-for-CMPs opportunity the paper argues for.

package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ParallelJoinQuery selects the Q13 join core (partitioned parallel hash
// join) in RunParallelDSS, alongside the real analogs 1 and 6.
const ParallelJoinQuery = 13

// ParallelDSSResult is one parallel-query measurement.
type ParallelDSSResult struct {
	Camp    sim.Camp
	Query   int
	Workers int
	// Cycles is the completion cycle of the slowest worker: the query's
	// parallel response time.
	Cycles uint64
	Result sim.Result
	// Rows is result rows (queries) or join output rows (join mode).
	Rows int
	// Digest fingerprints the row count only: multi-worker float
	// aggregates agree with serial runs up to addition order, and the
	// addition order follows morsel claiming, so value bits are not
	// stable across executions.
	Digest uint64
}

// RunParallelDSS executes one query with the morsel-driven executor on a
// fresh chip described by cell (camp, cores, L2 geometry, warming):
// workers worker goroutines, each with its own trace stream on its own
// hardware context. q is 1, 6, or ParallelJoinQuery. cell.Cores is grown
// to workers when smaller, so every worker has a core of its own (FC has
// one context per core; LC cores carry several contexts each); callers
// comparing worker counts must pass the same cell geometry for each —
// ParallelSpeedup does — or the cycle ratio mixes in hardware scaling.
// An optional join mode pins the hash-join strategy of joining plans
// (Q13); omitted, the auto policy decides per worker partition.
func (r *Runner) RunParallelDSS(cell Cell, q, workers int, seed int64, mode ...engine.JoinMode) (ParallelDSSResult, error) {
	if workers <= 0 {
		return ParallelDSSResult{}, fmt.Errorf("core: parallel DSS with %d workers", workers)
	}
	h, err := r.TPCH()
	if err != nil {
		return ParallelDSSResult{}, err
	}
	if cell.Cores < workers {
		cell.Cores = workers
	}
	chip := sim.NewChip(cell.SimConfig())

	ctxs := make([]*engine.Ctx, workers)
	recs := make([]*trace.Recorder, workers)
	streams := make([]*trace.Stream, workers)
	for w := 0; w < workers; w++ {
		// Tight pipes: which worker claims which morsel must be decided
		// at simulated pace, not by which goroutine the host happens to
		// schedule first — the vectorized executor's traces are short
		// enough that the default pipe slack would cover a whole query.
		rec, s := trace.PipeSized(256, 2)
		recs[w], streams[w] = rec, s
		chip.AddThread(s)
		ctxs[w] = h.DB.NewCtx(rec, 64+w, 64<<20)
		ctxs[w].Join = r.Join
		if len(mode) > 0 {
			ctxs[w].JoinMode = mode[0]
		}
	}

	p := workload.RandomParams(rand.New(rand.NewSource(seed)))
	var rows int
	var runErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if q == ParallelJoinQuery {
			rows, runErr = h.OrdersPerCustomerParallel(ctxs)
		} else {
			var res [][]engine.Value
			res, runErr = h.RunQueryParallel(ctxs, q, p)
			rows = len(res)
		}
		for _, rec := range recs {
			rec.Close()
		}
	}()

	warm := cell.WarmRefs
	if warm <= 0 {
		warm = 50000
	}
	chip.Warm(warm)
	res := chip.Run(1 << 34)
	for _, s := range streams {
		s.Stop()
		for {
			if _, ok := s.Next(); !ok {
				break
			}
		}
	}
	wg.Wait()
	if runErr != nil {
		return ParallelDSSResult{}, fmt.Errorf("core: parallel q%d x%d: %w", q, workers, runErr)
	}

	var last uint64
	for _, d := range res.ThreadDone {
		if d > last {
			last = d
		}
	}
	if last == 0 {
		last = res.Cycles
	}
	return ParallelDSSResult{
		Camp: cell.Camp, Query: q, Workers: workers,
		Cycles: last, Result: res, Rows: rows, Digest: countDigest(rows),
	}, nil
}

// ParallelSpeedup runs q at each worker count on the SAME chip geometry
// (cell.Cores pinned to the largest count up front, so the ratio
// measures executor scaling, not hardware scaling) and returns cycles
// per count plus the speedup of the last count over the first.
//
// Deprecated: build a Request with ModeParallelDSS (WorkerCounts for a
// custom sweep) and call Run.
func (r *Runner) ParallelSpeedup(cell Cell, q int, counts []int, seed int64) ([]ParallelDSSResult, float64, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 4}
	}
	res, err := r.Run(context.Background(), Request{
		Mode: ModeParallelDSS, Query: q, Seed: seed,
		Workers: counts[len(counts)-1], WorkerCounts: counts, Cell: &cell,
	})
	if err != nil {
		return nil, 0, err
	}
	out := make([]ParallelDSSResult, 0, len(res.Sweep))
	for _, s := range res.Sweep {
		out = append(out, ParallelDSSResult{
			Camp: cell.Camp, Query: q, Workers: s.Workers,
			Cycles: s.Cycles, Result: s.Result, Rows: s.Rows, Digest: s.Digest,
		})
	}
	return out, res.SpeedupX, nil
}
