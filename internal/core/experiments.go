package core

import (
	"repro/internal/sim"
)

// Fig2Point is one client count on the saturation curve.
type Fig2Point struct {
	Clients    int
	Throughput float64
}

// Figure2 sweeps the number of DSS clients on the FC CMP, exposing the
// unsaturated→saturated transition of the paper's Figure 2.
func (r *Runner) Figure2(clients []int) ([]Fig2Point, error) {
	if len(clients) == 0 {
		clients = []int{1, 2, 4, 8, 16, 32, 64, 128}
	}
	out := make([]Fig2Point, 0, len(clients))
	for _, n := range clients {
		c := DefaultCell(sim.FatCamp, DSS, true)
		c.Clients = n
		res, err := r.RunCell(c)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig2Point{Clients: n, Throughput: res.Throughput})
	}
	return out, nil
}

// Fig4Result holds the camp comparisons of Figure 4.
type Fig4Result struct {
	// Response time of LC normalized to FC, unsaturated (a).
	UnsatOLTP, UnsatDSS float64
	// Throughput of LC normalized to FC, saturated (b).
	SatOLTP, SatDSS float64
	Cells           []CellResult
}

// Figure4 compares the camps on unsaturated response time and saturated
// throughput for both workloads.
func (r *Runner) Figure4() (Fig4Result, error) {
	var out Fig4Result
	run := func(camp sim.Camp, wk WorkloadKind, sat bool) (CellResult, error) {
		res, err := r.RunCell(DefaultCell(camp, wk, sat))
		if err == nil {
			out.Cells = append(out.Cells, res)
		}
		return res, err
	}
	fcUO, err := run(sim.FatCamp, OLTP, false)
	if err != nil {
		return out, err
	}
	lcUO, err := run(sim.LeanCamp, OLTP, false)
	if err != nil {
		return out, err
	}
	// Unsaturated DSS response is the total over the paper's four query
	// analogs (their single-client methodology runs the full mix).
	var fcUD, lcUD float64
	for _, q := range []int{1, 6, 13, 16} {
		for _, camp := range []sim.Camp{sim.FatCamp, sim.LeanCamp} {
			cell := DefaultCell(camp, DSS, false)
			cell.UnsatQuery = q
			res, err := r.RunCell(cell)
			if err != nil {
				return out, err
			}
			out.Cells = append(out.Cells, res)
			if camp == sim.FatCamp {
				fcUD += res.ResponseCycles
			} else {
				lcUD += res.ResponseCycles
			}
		}
	}
	fcSO, err := run(sim.FatCamp, OLTP, true)
	if err != nil {
		return out, err
	}
	lcSO, err := run(sim.LeanCamp, OLTP, true)
	if err != nil {
		return out, err
	}
	fcSD, err := run(sim.FatCamp, DSS, true)
	if err != nil {
		return out, err
	}
	lcSD, err := run(sim.LeanCamp, DSS, true)
	if err != nil {
		return out, err
	}
	out.UnsatOLTP = lcUO.ResponseCycles / fcUO.ResponseCycles
	out.UnsatDSS = lcUD / fcUD
	out.SatOLTP = lcSO.Throughput / fcSO.Throughput
	out.SatDSS = lcSD.Throughput / fcSD.Throughput
	return out, nil
}

// Figure5 measures the execution-time breakdown for all eight camp ×
// workload × saturation combinations (26 MB shared L2, as in the paper).
func (r *Runner) Figure5() ([]CellResult, error) {
	var out []CellResult
	for _, sat := range []bool{false, true} {
		for _, wk := range []WorkloadKind{OLTP, DSS} {
			for _, camp := range []sim.Camp{sim.FatCamp, sim.LeanCamp} {
				res, err := r.RunCell(DefaultCell(camp, wk, sat))
				if err != nil {
					return nil, err
				}
				out = append(out, res)
			}
		}
	}
	return out, nil
}

// Fig6Point is one cache size in the Figure 6 sweep.
type Fig6Point struct {
	L2MB     int
	LatConst int // the fixed 4-cycle latency
	LatReal  int // Cacti latency actually used

	// Throughput under constant 4-cycle latency and under Cacti latency.
	ThroughputConst, ThroughputReal float64

	// CPI decomposition under Cacti latency (Figures 6b/6c).
	CPITotal, CPIDStall, CPIL2Hit float64
}

// Figure6 sweeps the shared L2 from 1 MB to 26 MB for one workload on the
// FC CMP, at both a fixed 4-cycle hit latency and the Cacti latency.
func (r *Runner) Figure6(wk WorkloadKind, sizesMB []int) ([]Fig6Point, error) {
	if len(sizesMB) == 0 {
		sizesMB = []int{1, 2, 4, 8, 16, 26}
	}
	out := make([]Fig6Point, 0, len(sizesMB))
	for _, mb := range sizesMB {
		cellConst := DefaultCell(sim.FatCamp, wk, true)
		cellConst.L2Size = mb << 20
		cellConst.L2Lat = 4
		resConst, err := r.RunCell(cellConst)
		if err != nil {
			return nil, err
		}
		cellReal := cellConst
		cellReal.L2Lat = 0 // Cacti
		resReal, err := r.RunCell(cellReal)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig6Point{
			L2MB:            mb,
			LatConst:        4,
			LatReal:         cellReal.SimConfig().Hier.L2Lat,
			ThroughputConst: resConst.Throughput,
			ThroughputReal:  resReal.Throughput,
			CPITotal:        resReal.Result.CPI(),
			CPIDStall: resReal.Result.CPIComponent(sim.KindDStallL2) +
				resReal.Result.CPIComponent(sim.KindDStallMem) +
				resReal.Result.CPIComponent(sim.KindDStallCoh),
			CPIL2Hit: resReal.Result.CPIComponent(sim.KindDStallL2),
		})
	}
	return out, nil
}

// Fig7Result compares the 4-node SMP (private 4 MB L2s) against the
// 4-core CMP (shared 16 MB L2) per workload.
type Fig7Result struct {
	Workload        WorkloadKind
	SMP, CMP        CellResult
	CPISMP, CPICMP  float64
	L2HitCPIRatio   float64 // CMP L2-hit CPI / SMP L2-hit CPI
	CoherenceCPISMP float64
}

// Figure7 runs the SMP-vs-CMP comparison of Figure 7.
func (r *Runner) Figure7(wk WorkloadKind) (Fig7Result, error) {
	smp := DefaultCell(sim.FatCamp, wk, true)
	smp.SharedL2 = false
	smp.L2Size = 4 << 20
	smpRes, err := r.RunCell(smp)
	if err != nil {
		return Fig7Result{}, err
	}
	cmp := DefaultCell(sim.FatCamp, wk, true)
	cmp.SharedL2 = true
	cmp.L2Size = 16 << 20
	cmpRes, err := r.RunCell(cmp)
	if err != nil {
		return Fig7Result{}, err
	}
	out := Fig7Result{
		Workload: wk, SMP: smpRes, CMP: cmpRes,
		CPISMP:          smpRes.Result.CPI(),
		CPICMP:          cmpRes.Result.CPI(),
		CoherenceCPISMP: smpRes.Result.CPIComponent(sim.KindDStallCoh),
	}
	smpL2 := smpRes.Result.CPIComponent(sim.KindDStallL2)
	cmpL2 := cmpRes.Result.CPIComponent(sim.KindDStallL2)
	if smpL2 > 0 {
		out.L2HitCPIRatio = cmpL2 / smpL2
	}
	return out, nil
}

// Fig8Point is one core count in the Figure 8 sweep.
type Fig8Point struct {
	Cores       int
	Throughput  float64
	Speedup     float64 // normalized to the 4-core baseline (x1)
	L2MissRate  float64
	QueueCycles uint64
}

// Figure8 sweeps FC core count at a fixed 16 MB shared L2.
func (r *Runner) Figure8(wk WorkloadKind, cores []int) ([]Fig8Point, error) {
	if len(cores) == 0 {
		cores = []int{4, 8, 12, 16}
	}
	out := make([]Fig8Point, 0, len(cores))
	var base float64
	for i, n := range cores {
		c := DefaultCell(sim.FatCamp, wk, true)
		c.Cores = n
		c.L2Size = 16 << 20
		// Client population scales with the machine, keeping it saturated
		// without pathological lock convoys on the scaled-down database.
		c.Clients = n * 8
		if wk == DSS {
			c.Clients = n * 4
		}
		res, err := r.RunCell(c)
		if err != nil {
			return nil, err
		}
		p := Fig8Point{
			Cores:       n,
			Throughput:  res.Throughput,
			L2MissRate:  res.Result.Cache.L2MissRate(),
			QueueCycles: res.Result.Cache.PortQueueCycles,
		}
		if i == 0 {
			base = res.Throughput / float64(n)
		}
		if base > 0 {
			p.Speedup = res.Throughput / base
		}
		out = append(out, p)
	}
	return out, nil
}
