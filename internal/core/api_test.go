package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/sim"
)

// TestRequestDefaults checks the one-place defaulting contract: a bare
// request resolves to the documented mode defaults, and explicit values
// survive.
func TestRequestDefaults(t *testing.T) {
	q := Request{Mode: ModeStagedOLTP}.WithDefaults()
	if q.Query != 6 || q.Clients != 8 || q.Txns != 8 || q.Cohort != 16 ||
		q.Parts != 1 || q.Seed != 7 {
		t.Fatalf("staged defaults wrong: %+v", q)
	}
	if len(q.PartCounts) != 1 || q.PartCounts[0] != 1 {
		t.Fatalf("PartCounts default wrong: %v", q.PartCounts)
	}
	if q.Cell == nil || q.Cell.WarmRefs != 10000 || q.Cell.Workload != OLTP {
		t.Fatalf("staged default cell wrong: %+v", q.Cell)
	}

	p := Request{Mode: ModeParallelDSS, Workers: 3}.WithDefaults()
	if len(p.WorkerCounts) != 2 || p.WorkerCounts[0] != 1 || p.WorkerCounts[1] != 3 {
		t.Fatalf("WorkerCounts default wrong: %v", p.WorkerCounts)
	}

	// shared-dss keeps query 0: it means the Q1/Q6/Q13 mix there.
	s := Request{Mode: ModeSharedDSS}.WithDefaults()
	if s.Query != 0 {
		t.Fatalf("shared-dss query defaulted to %d, want 0 (the mix)", s.Query)
	}
}

// TestRequestValidation checks that unrunnable requests come back as
// typed *ValidationError values naming the offending field, not as
// panics from deep inside partitioning.
func TestRequestValidation(t *testing.T) {
	cases := []struct {
		name  string
		req   Request
		field string
	}{
		{"unknown mode", Request{Mode: "warp-dss"}, "mode"},
		{"bad vec query", Request{Mode: ModeVecDSS, Query: 5}, "query"},
		{"bad shared query", Request{Mode: ModeSharedDSS, Query: 2}, "query"},
		{"negative clients", Request{Mode: ModeSharedDSS, Clients: -1}, "clients"},
		{"negative workers", Request{Mode: ModeParallelDSS, Workers: -2}, "workers"},
		{"zero worker count", Request{Mode: ModeParallelDSS, WorkerCounts: []int{1, 0}}, "workers"},
		{"negative parts", Request{Mode: ModeStagedOLTP, Parts: -1}, "parts"},
		{"negative part count", Request{Mode: ModeStagedOLTP, PartCounts: []int{1, -2}}, "parts"},
		{"remote over 100", Request{Mode: ModeStagedOLTP, RemotePct: 101}, "remote"},
		{"remote negative", Request{Mode: ModeStagedOLTP, RemotePct: -5}, "remote"},
	}
	for _, tc := range cases {
		err := tc.req.WithDefaults().Validate()
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("%s: got %v, want *ValidationError", tc.name, err)
			continue
		}
		if ve.Field != tc.field {
			t.Errorf("%s: field %q, want %q (%v)", tc.name, ve.Field, tc.field, err)
		}
	}
	if err := (Request{Mode: ModeVecDSS}).WithDefaults().Validate(); err != nil {
		t.Fatalf("default vec request rejected: %v", err)
	}
	if _, err := sharedRunner.Run(context.Background(), Request{Mode: ModeStagedOLTP, Parts: -1}); err == nil {
		t.Fatal("Run accepted parts=-1")
	}
}

// TestStagedOptsValidate checks the option-block validation the request
// path shares with direct RunStagedOLTP callers.
func TestStagedOptsValidate(t *testing.T) {
	if err := (StagedOLTPOpts{}).WithDefaults().Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	// WithDefaults must leave negatives alone for Validate to see.
	o := StagedOLTPOpts{Parts: -3}.WithDefaults()
	if o.Parts != -3 {
		t.Fatalf("WithDefaults rewrote Parts=-3 to %d", o.Parts)
	}
	var ve *ValidationError
	if err := o.Validate(); !errors.As(err, &ve) || ve.Field != "parts" {
		t.Fatalf("Parts=-3: got %v", err)
	}
	if err := (StagedOLTPOpts{RemotePct: 200}).WithDefaults().Validate(); !errors.As(err, &ve) || ve.Field != "remote" {
		t.Fatal("RemotePct=200 accepted")
	}
	if _, err := sharedRunner.RunStagedOLTP(DefaultModeCell(ModeStagedOLTP, sim.FatCamp), true, StagedOLTPOpts{Cohort: -1}); err == nil {
		t.Fatal("RunStagedOLTP accepted Cohort=-1")
	}
}

// TestRunVecGolden checks that the unified entry point reproduces the
// legacy vec-dss execution byte-for-byte: same result rows, same typed
// row digests as direct RunVecDSS calls on the same cell. (Cycles are
// not asserted — live trace production makes them host-timing
// sensitive, which is why Run keeps the faster of two runs.)
func TestRunVecGolden(t *testing.T) {
	cell := DefaultModeCell(ModeVecDSS, sim.FatCamp)
	res, err := sharedRunner.Run(context.Background(), Request{Mode: ModeVecDSS, Query: 6, Cell: &cell})
	if err != nil {
		t.Fatal(err)
	}
	row, err := sharedRunner.RunVecDSS(cell, 6, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	vec, err := sharedRunner.RunVecDSS(cell, 6, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.Digest != row.Digest || res.Baseline.Rows != row.Rows {
		t.Errorf("baseline digest %#x (%d rows) vs legacy row %#x (%d rows)",
			res.Baseline.Digest, res.Baseline.Rows, row.Digest, row.Rows)
	}
	if res.Main.Digest != vec.Digest || res.Main.Rows != vec.Rows {
		t.Errorf("main digest %#x (%d rows) vs legacy vec %#x (%d rows)",
			res.Main.Digest, res.Main.Rows, vec.Digest, vec.Rows)
	}
	if res.Digest != res.Main.Digest {
		t.Errorf("Result.Digest %#x != Main.Digest %#x", res.Digest, res.Main.Digest)
	}
	if res.Baseline.Label != "row" || res.Main.Label != "vectorized" {
		t.Errorf("labels %q/%q", res.Baseline.Label, res.Main.Label)
	}
	t.Logf("q6: row %#x == vec %#x: %v (speedup %.2fx)",
		res.Baseline.Digest, res.Main.Digest, res.Baseline.Digest == res.Main.Digest, res.SpeedupX)
}

// TestRunStagedGolden checks that the unified entry point reproduces
// the legacy staged-oltp execution byte-for-byte: the monolithic and
// cohort digests match a direct RunStagedOLTP pair on the same cell and
// inputs, and the committed-transaction counts agree.
func TestRunStagedGolden(t *testing.T) {
	cell := DefaultModeCell(ModeStagedOLTP, sim.FatCamp)
	cell.StreamBuf = false
	req := Request{Mode: ModeStagedOLTP, Clients: 6, Txns: 4, Cell: &cell}
	res, err := sharedRunner.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	opts := StagedOLTPOpts{Clients: 6, PerClient: 4}
	mono, err := sharedRunner.RunStagedOLTP(cell, false, opts)
	if err != nil {
		t.Fatal(err)
	}
	coh, err := sharedRunner.RunStagedOLTP(cell, true, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.Digest != mono.Digest {
		t.Errorf("baseline digest %#x vs legacy monolithic %#x", res.Baseline.Digest, mono.Digest)
	}
	if res.Main.Digest != coh.Digest {
		t.Errorf("main digest %#x vs legacy cohort %#x", res.Main.Digest, coh.Digest)
	}
	if res.Main.Digest != res.Baseline.Digest {
		t.Error("Run returned without enforcing digest identity")
	}
	want := 6 * 4
	if res.Baseline.Txns != want || res.Main.Txns != want {
		t.Errorf("committed %d/%d, want %d", res.Baseline.Txns, res.Main.Txns, want)
	}
	// The simulated measurement itself is deterministic for the staged
	// pair (one traced worker, deterministic inputs): the unified path
	// must report the same cycles and misses the legacy path measured.
	if res.Baseline.Cycles != mono.Cycles {
		t.Errorf("baseline cycles %d vs legacy %d", res.Baseline.Cycles, mono.Cycles)
	}
	if res.Main.Cycles != coh.Cycles {
		t.Errorf("main cycles %d vs legacy %d", res.Main.Cycles, coh.Cycles)
	}
	if res.Main.Sched != coh.Sched {
		t.Errorf("scheduler stats %+v vs legacy %+v", res.Main.Sched, coh.Sched)
	}
}

// TestRunSharedGolden checks that the unified entry point reproduces
// the legacy shared-dss execution: the unshared baseline's combined
// per-client digest matches a direct RunSharedDSS call (unshared runs
// are deterministic: fixed phases, fixed seeds), and both sides of the
// pair return the same row counts. The shared side's digest is not
// compared across modes — consumers attach to the circular scan
// mid-rotation, so float aggregates accumulate in a different order.
func TestRunSharedGolden(t *testing.T) {
	cell := DefaultModeCell(ModeSharedDSS, sim.FatCamp)
	res, err := sharedRunner.Run(context.Background(), Request{Mode: ModeSharedDSS, Query: 6, Clients: 3, Cell: &cell})
	if err != nil {
		t.Fatal(err)
	}
	un, err := sharedRunner.RunSharedDSS(cell, 6, 3, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.Digest != un.Digest || res.Baseline.Rows != un.Rows {
		t.Errorf("baseline digest %#x (%d rows) vs legacy unshared %#x (%d rows)",
			res.Baseline.Digest, res.Baseline.Rows, un.Digest, un.Rows)
	}
	if res.Baseline.Rows != res.Main.Rows {
		t.Errorf("unshared rows %d != shared rows %d", res.Baseline.Rows, res.Main.Rows)
	}
	if res.Main.Scans.Attaches == 0 {
		t.Error("shared side recorded no scan attaches")
	}
}

// TestRunCancelled checks that a dead context stops the run between
// sub-measurements.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sharedRunner.Run(ctx, Request{Mode: ModeVecDSS}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
