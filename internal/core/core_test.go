package core

import (
	"testing"

	"repro/internal/sim"
)

// sharedRunner reuses one test-scale runner (and its loaded databases)
// across the package's tests.
var sharedRunner = NewRunner(TestScale())

func shortCell(camp sim.Camp, wk WorkloadKind, sat bool) Cell {
	c := DefaultCell(camp, wk, sat)
	c.WarmRefs = 60000
	c.WindowCycles = 120000
	c.UnsatTxns = 48
	return c
}

func TestTable1Camps(t *testing.T) {
	if len(Camps) != 2 {
		t.Fatalf("Table 1 has %d camps", len(Camps))
	}
	if Camps[0].Camp != sim.FatCamp || Camps[1].Camp != sim.LeanCamp {
		t.Fatal("camp order wrong")
	}
	for _, c := range Camps {
		if c.IssueWidth == "" || c.ExecOrder == "" || c.PipelineDepth == "" {
			t.Fatalf("incomplete camp spec %+v", c)
		}
	}
}

func TestDefaultCellParameters(t *testing.T) {
	c := DefaultCell(sim.FatCamp, OLTP, true)
	if c.Clients != 64 || c.L2Size != 26<<20 || !c.SharedL2 {
		t.Fatalf("OLTP saturated defaults: %+v", c)
	}
	if d := DefaultCell(sim.LeanCamp, DSS, true); d.Clients != 16 {
		t.Fatalf("DSS saturated clients = %d", d.Clients)
	}
	if u := DefaultCell(sim.FatCamp, DSS, false); u.Clients != 1 || u.Saturated {
		t.Fatalf("unsaturated defaults: %+v", u)
	}
}

func TestSimConfigUsesCactiLatency(t *testing.T) {
	c := DefaultCell(sim.FatCamp, OLTP, true)
	c.L2Size = 16 << 20
	cfg := c.SimConfig()
	if cfg.Hier.L2Lat < 10 || cfg.Hier.L2Lat > 20 {
		t.Fatalf("Cacti-derived 16MB latency = %d", cfg.Hier.L2Lat)
	}
	c.L2Lat = 4
	if got := c.SimConfig().Hier.L2Lat; got != 4 {
		t.Fatalf("pinned latency = %d", got)
	}
}

func TestRunSaturatedOLTPCell(t *testing.T) {
	res, err := sharedRunner.RunCell(shortCell(sim.FatCamp, OLTP, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput measured")
	}
	if res.Result.Instructions == 0 || res.Result.Cycles == 0 {
		t.Fatal("empty measurement")
	}
	comp, _, dstall, _ := res.FracBreakdown()
	if comp <= 0 || comp > 1 || dstall < 0 {
		t.Fatalf("breakdown out of range: comp=%v d=%v", comp, dstall)
	}
	if res.Work == 0 {
		t.Fatal("no transactions completed")
	}
}

func TestRunUnsaturatedDSSCellCompletes(t *testing.T) {
	c := shortCell(sim.FatCamp, DSS, false)
	c.UnsatQuery = 6
	res, err := sharedRunner.RunCell(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResponseCycles <= 0 {
		t.Fatal("no response time")
	}
	if res.Work != 1 {
		t.Fatalf("work = %d, want 1 query", res.Work)
	}
}

func TestCampComparisonDirections(t *testing.T) {
	// The paper's headline directional results at reduced scale: LC wins
	// saturated throughput, FC wins unsaturated response time.
	fcSat, err := sharedRunner.RunCell(shortCell(sim.FatCamp, OLTP, true))
	if err != nil {
		t.Fatal(err)
	}
	lcSat, err := sharedRunner.RunCell(shortCell(sim.LeanCamp, OLTP, true))
	if err != nil {
		t.Fatal(err)
	}
	if lcSat.Throughput <= fcSat.Throughput {
		t.Errorf("saturated LC IPC %.2f not above FC %.2f", lcSat.Throughput, fcSat.Throughput)
	}
	fcU, err := sharedRunner.RunCell(shortCell(sim.FatCamp, OLTP, false))
	if err != nil {
		t.Fatal(err)
	}
	lcU, err := sharedRunner.RunCell(shortCell(sim.LeanCamp, OLTP, false))
	if err != nil {
		t.Fatal(err)
	}
	if lcU.ResponseCycles <= fcU.ResponseCycles {
		t.Errorf("unsaturated LC response %.0f not above FC %.0f",
			lcU.ResponseCycles, fcU.ResponseCycles)
	}
}

func TestFigure7CoherenceMechanism(t *testing.T) {
	res, err := sharedRunner.Figure7(OLTP)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoherenceCPISMP <= 0 {
		t.Error("SMP shows no coherence stalls on OLTP")
	}
	if cohCMP := res.CMP.Result.CPIComponent(sim.KindDStallCoh); cohCMP != 0 {
		t.Errorf("CMP shows coherence stalls: %v", cohCMP)
	}
	if res.CPICMP >= res.CPISMP {
		t.Errorf("CMP CPI %.3f not below SMP CPI %.3f", res.CPICMP, res.CPISMP)
	}
	if res.L2HitCPIRatio <= 1 {
		t.Errorf("L2-hit CPI ratio CMP/SMP = %.2f, want > 1", res.L2HitCPIRatio)
	}
}

func TestFigure2SaturationCurve(t *testing.T) {
	pts, err := sharedRunner.Figure2([]int{1, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[1].Throughput <= pts[0].Throughput {
		t.Errorf("throughput not rising with clients: %v", pts)
	}
}

func TestFigure3ValidationAgreement(t *testing.T) {
	v, err := sharedRunner.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if v.Simulated.Total <= 0 || v.Analytic.Total <= 0 {
		t.Fatalf("degenerate CPI: %+v", v)
	}
	// The paper reports <5% between FLEXUS and hardware; our analytic
	// model is coarser — require agreement within 15%.
	if v.ErrPct > 15 {
		t.Errorf("simulated vs analytic CPI differ by %.1f%% (sim %.3f vs analytic %.3f)",
			v.ErrPct, v.Simulated.Total, v.Analytic.Total)
	}
}

func TestFigure6LatencyGap(t *testing.T) {
	pts, err := sharedRunner.Figure6(OLTP, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.ThroughputConst <= 0 || p.ThroughputReal <= 0 {
			t.Fatalf("empty point %+v", p)
		}
		if p.LatReal < p.LatConst {
			t.Fatalf("Cacti latency %d below const %d at %dMB", p.LatReal, p.LatConst, p.L2MB)
		}
	}
	if pts[1].ThroughputConst <= pts[0].ThroughputConst {
		t.Error("const-latency curve not rising with size")
	}
}

func TestFigure8ScalesClients(t *testing.T) {
	pts, err := sharedRunner.Figure8(OLTP, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Throughput <= pts[0].Throughput {
		t.Errorf("8 cores not faster than 4: %+v", pts)
	}
	if pts[0].Speedup < 3.9 || pts[0].Speedup > 4.1 {
		t.Errorf("baseline speedup = %v, want 4 (normalized per-core)", pts[0].Speedup)
	}
}

func TestStagedExperimentModes(t *testing.T) {
	res, err := sharedRunner.StagedExperiment(12000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("%d modes", len(res))
	}
	rows := res[0].Rows
	if rows == 0 {
		t.Fatal("volcano processed no rows")
	}
	for _, m := range res {
		if m.Cycles == 0 {
			t.Errorf("mode %s measured no cycles", m.Mode)
		}
		if m.Rows != rows {
			t.Errorf("mode %s rows=%d, volcano=%d (results disagree)", m.Mode, m.Rows, rows)
		}
	}
	// Parallel staging must beat single-threaded execution on wall-clock
	// (it uses three cores).
	var volcano, parallel uint64
	for _, m := range res {
		switch m.Mode {
		case "volcano":
			volcano = m.Cycles
		case "staged-parallel":
			parallel = m.Cycles
		}
	}
	if parallel >= volcano {
		t.Errorf("staged-parallel (%d cycles) not faster than volcano (%d)", parallel, volcano)
	}
}

func TestHistoricDataset(t *testing.T) {
	if len(Historic) < 10 {
		t.Fatalf("historic dataset too small: %d", len(Historic))
	}
	prevYear := 0
	for _, h := range Historic {
		if h.Year < prevYear {
			t.Errorf("historic data out of order at %s", h.Processor)
		}
		prevYear = h.Year
		if h.CacheKB <= 0 {
			t.Errorf("%s has no cache size", h.Processor)
		}
	}
	// The paper's Figure 1 trend: ~3 orders of magnitude growth.
	if Historic[len(Historic)-1].CacheKB < 1000*Historic[0].CacheKB {
		t.Error("cache growth trend below 3 orders of magnitude")
	}
}

func TestCactiCurveMonotonic(t *testing.T) {
	pts, err := CactiCurve()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Cycles < pts[i-1].Cycles {
			t.Errorf("latency curve dips at %dKB", pts[i].SizeKB)
		}
	}
}

func TestCellString(t *testing.T) {
	c := DefaultCell(sim.FatCamp, OLTP, true)
	if s := c.String(); s == "" {
		t.Fatal("empty cell description")
	}
	c.SharedL2 = false
	if s := c.String(); s == "" || s == DefaultCell(sim.FatCamp, OLTP, true).String() {
		t.Fatal("SMP not reflected in description")
	}
}
