package core

import (
	"testing"

	"repro/internal/sim"
)

// TestSharedDSSModes runs the work-sharing comparison at a small scale:
// both modes complete all queries, and sharing never loses to private
// scans on a scan-heavy query.
func TestSharedDSSModes(t *testing.T) {
	r := NewRunner(TestScale())
	cell := DefaultCell(sim.FatCamp, DSS, true)
	cell.WarmRefs = 20000
	const clients = 4

	un, err := r.RunSharedDSS(cell, 6, clients, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := r.RunSharedDSS(cell, 6, clients, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	if un.Rows == 0 || sh.Rows == 0 {
		t.Fatalf("empty results: unshared %d rows, shared %d rows", un.Rows, sh.Rows)
	}
	if sh.Scans.Rotations != clients {
		t.Fatalf("shared run completed %d rotations, want %d", sh.Scans.Rotations, clients)
	}
	if un.Cycles == 0 || sh.Cycles == 0 {
		t.Fatal("zero-cycle measurement")
	}
	// Before PR 3 the gate here was 1.5x: shared consumers ran a
	// vectorized filter while private scans decoded row-at-a-time, so
	// most of the "sharing" win was really a vectorization win. Now that
	// every scan is vectorized, the private baseline is ~5x faster and
	// sharing's remaining edge — one decode pass plus store-free
	// consumers — is ~1.15x at this cache-resident test scale. Gate that
	// sharing never loses.
	ratio := float64(un.Cycles) / float64(sh.Cycles)
	if ratio < 1.05 {
		t.Fatalf("shared mode only %.2fx unshared aggregate throughput (cycles %d vs %d)",
			ratio, un.Cycles, sh.Cycles)
	}
	t.Logf("q6 x%d clients: unshared %d cycles, shared %d cycles (%.2fx)", clients, un.Cycles, sh.Cycles, ratio)
}

// TestSharedDSSMix exercises the Q1/Q6/Q13 mix (both shared tables get
// producer threads) on the simulated chip.
func TestSharedDSSMix(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed-query simulation is slow")
	}
	r := NewRunner(TestScale())
	cell := DefaultCell(sim.FatCamp, DSS, true)
	cell.WarmRefs = 20000
	res, err := r.RunSharedDSS(cell, 0, 3, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == 0 || res.Scans.Rotations == 0 {
		t.Fatalf("mix run: %+v", res)
	}
}
