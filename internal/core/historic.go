package core

import "repro/internal/cacti"

// HistoricPoint is one processor generation's on-chip cache data, the raw
// material of Figure 1. Sizes are the largest on-chip cache level; values
// follow the public datasheet/ISSCC figures the paper draws on.
type HistoricPoint struct {
	Year      int
	Processor string
	CacheKB   int
	HitCycles int // L2/L3 hit latency where documented; 0 = n/a
}

// Historic is the Figure 1 dataset: two decades of on-chip cache growth
// and the accompanying hit-latency growth.
var Historic = []HistoricPoint{
	{1990, "Intel i486", 8, 0},
	{1993, "Intel Pentium", 16, 0},
	{1995, "Intel Pentium Pro", 512, 4},
	{1997, "Intel Pentium II", 512, 4},
	{1999, "Intel Pentium III", 512, 4},
	{2001, "IBM Power4", 1440, 12},
	{2002, "Intel Itanium 2 (McKinley)", 3072, 5},
	{2003, "Intel Pentium 4 (Gallatin)", 2048, 18},
	{2004, "IBM Power5", 1920, 14},
	{2005, "Intel Itanium 2 (9M)", 9216, 14},
	{2005, "Sun UltraSPARC T1", 3072, 21},
	{2006, "Intel Xeon 7100 (Tulsa)", 16384, 14},
	{2006, "Intel Itanium (Montecito)", 24576, 14},
}

// CactiCurvePoint pairs a cache size with the model's latency.
type CactiCurvePoint struct {
	SizeKB  int
	Cycles  int
	Area    float64
	Leakage float64
}

// CactiCurve evaluates the Cacti-style model over the Figure 1 size range,
// showing that the latency trend is a physical consequence of size.
func CactiCurve() ([]CactiCurvePoint, error) {
	sizes := []int{64 << 10, 256 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 26 << 20}
	rs, err := cacti.Sweep(sizes)
	if err != nil {
		return nil, err
	}
	out := make([]CactiCurvePoint, len(rs))
	for i, r := range rs {
		out[i] = CactiCurvePoint{
			SizeKB:  sizes[i] >> 10,
			Cycles:  r.LatencyCycles,
			Area:    r.AreaMM2,
			Leakage: r.LeakageMW,
		}
	}
	return out, nil
}
