// Vectorized-executor experiments: one serial DSS query traced on a
// fresh simulated chip, executed either by the row-at-a-time reference
// operators or by the vectorized batch core, on identical geometry. The
// cycle ratio is the payoff of block-at-a-time execution — amortized
// iterator overhead, ranged instead of per-tuple memory traffic — which
// is the cache-conscious restructuring the paper argues CMP database
// servers need before more cores help.

package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// VecDSSResult is one serial-query measurement on one executor.
type VecDSSResult struct {
	Camp  sim.Camp
	Query int
	// Vectorized reports which executor ran the plan.
	Vectorized bool
	// Cycles is the query's completion cycle (response time).
	Cycles uint64
	Result sim.Result
	Rows   int
	// Digest is RowsDigest of the result set: both executors must
	// produce byte-identical rows, and the unified API exposes this as
	// the run's logical-output fingerprint.
	Digest uint64
}

// Throughput returns queries per million simulated cycles.
func (r VecDSSResult) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return 1e6 / float64(r.Cycles)
}

// RunVecDSS executes one serial query (1, 6, or 13) to completion on a
// fresh chip described by cell, on the vectorized executor or the
// row-at-a-time reference path. An optional join mode pins the hash-join
// strategy of joining plans (Q13); omitted, the auto policy decides.
func (r *Runner) RunVecDSS(cell Cell, q int, vectorized bool, seed int64, mode ...engine.JoinMode) (VecDSSResult, error) {
	if q != 1 && q != 6 && q != 13 {
		return VecDSSResult{}, fmt.Errorf("core: vectorized DSS query %d (have 1, 6, 13)", q)
	}
	h, err := r.TPCH()
	if err != nil {
		return VecDSSResult{}, err
	}
	chip := sim.NewChip(cell.SimConfig())

	rec, s := trace.Pipe()
	chip.AddThread(s)
	ctx := h.DB.NewCtx(rec, 72, 64<<20)
	ctx.Join = r.Join
	if len(mode) > 0 {
		ctx.JoinMode = mode[0]
	}

	p := workload.RandomParams(rand.New(rand.NewSource(seed)))
	var rows int
	var digest uint64
	var runErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer rec.Close()
		run := h.RunQueryRow
		if vectorized {
			run = h.RunQuery
		}
		v, err := run(ctx, q, p)
		rows, digest, runErr = len(v), RowsDigest(v), err
	}()

	warm := cell.WarmRefs
	if warm <= 0 {
		warm = 5000
	}
	chip.Warm(warm)
	res := chip.Run(1 << 34)
	s.Stop()
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	wg.Wait()
	if runErr != nil {
		return VecDSSResult{}, fmt.Errorf("core: vec DSS q%d: %w", q, runErr)
	}

	cycles := res.ThreadDone[0]
	if cycles == 0 {
		cycles = res.Cycles
	}
	return VecDSSResult{
		Camp: cell.Camp, Query: q, Vectorized: vectorized,
		Cycles: cycles, Result: res, Rows: rows, Digest: digest,
	}, nil
}

// VectorizedSpeedup measures query q on both executors on identical chip
// geometry and returns (row, vectorized, speedup): cycles of the
// row-at-a-time path over cycles of the vectorized path.
//
// Deprecated: build a Request with ModeVecDSS and call Run.
func (r *Runner) VectorizedSpeedup(cell Cell, q int, seed int64) (VecDSSResult, VecDSSResult, float64, error) {
	res, err := r.Run(context.Background(), Request{Mode: ModeVecDSS, Query: q, Seed: seed, Cell: &cell})
	if err != nil {
		return VecDSSResult{}, VecDSSResult{}, 0, err
	}
	unpack := func(s Side, vectorized bool) VecDSSResult {
		return VecDSSResult{
			Camp: cell.Camp, Query: q, Vectorized: vectorized,
			Cycles: s.Cycles, Result: s.Result, Rows: s.Rows, Digest: s.Digest,
		}
	}
	return unpack(res.Baseline, false), unpack(res.Main, true), res.SpeedupX, nil
}
