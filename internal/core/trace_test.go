package core

import (
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// checkRunReconciles is the golden contract of a traced run: exactly one
// root span (cat "run", parent 0) covering [0, Cycles] so simulated-cycle
// span totals reconcile with the run's reported cycle count exactly,
// every other span inside the root's bounds with a resolvable parent, and
// both clocks present on every span. Returns the deepest nesting level
// (root = 1).
func checkRunReconciles(t *testing.T, run obs.Run, wantCycles uint64) int {
	t.Helper()
	if run.Cycles != wantCycles {
		t.Errorf("%s: trace reports %d cycles, side reports %d", run.Label, run.Cycles, wantCycles)
	}
	byID := make(map[uint64]obs.SpanData, len(run.Spans))
	roots := 0
	for _, sp := range run.Spans {
		byID[sp.ID] = sp
		if sp.Cat == "run" {
			roots++
			if sp.Parent != 0 {
				t.Errorf("%s: root span has parent %d", run.Label, sp.Parent)
			}
			if sp.CycStart != 0 || sp.CycEnd != run.Cycles {
				t.Errorf("%s: root span covers [%d,%d], want [0,%d] (±0 reconcile)",
					run.Label, sp.CycStart, sp.CycEnd, run.Cycles)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("%s: %d root spans, want exactly 1", run.Label, roots)
	}
	depth := 0
	for _, sp := range run.Spans {
		if sp.CycEnd < sp.CycStart || sp.CycEnd > run.Cycles {
			t.Errorf("%s: span %q [%d,%d] outside run bounds [0,%d]",
				run.Label, sp.Name, sp.CycStart, sp.CycEnd, run.Cycles)
		}
		if sp.WallEndUS < sp.WallStartUS {
			t.Errorf("%s: span %q wall clock runs backwards", run.Label, sp.Name)
		}
		d := 1
		for p := sp.Parent; p != 0; d++ {
			parent, ok := byID[p]
			if !ok {
				t.Fatalf("%s: span %q parent %d does not exist", run.Label, sp.Name, p)
			}
			p = parent.Parent
		}
		if d > depth {
			depth = d
		}
	}
	return depth
}

// TestStagedOLTPTraceReconciles is the acceptance golden test for the
// dual-clock tracer: a traced staged-OLTP request yields one span run per
// executed side whose root span reconciles with that side's reported
// cycle count ±0, nested at least run → txn → stage/quantum deep.
func TestStagedOLTPTraceReconciles(t *testing.T) {
	r := NewRunner(TestScale())
	cell := DefaultCell(sim.FatCamp, OLTP, false)
	cell.WarmRefs = 10000
	cell.StreamBuf = false
	res, err := r.Run(context.Background(), Request{
		Mode: ModeStagedOLTP, Clients: 8, Txns: 4, Cohort: 16, Seed: 7,
		Cell: &cell, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 1+len(res.Sweep) {
		t.Fatalf("%d trace runs for 1 baseline + %d sweep sides", len(res.Traces), len(res.Sweep))
	}
	sides := append([]Side{res.Baseline}, res.Sweep...)
	for i, run := range res.Traces {
		if run.Label != sides[i].Label {
			t.Errorf("trace %d labeled %q, side labeled %q", i, run.Label, sides[i].Label)
		}
		depth := checkRunReconciles(t, run, sides[i].Cycles)
		if depth < 3 {
			t.Errorf("%s: deepest nesting %d, want >= 3 (run -> txn -> stage/quantum)", run.Label, depth)
		}
		t.Logf("%s: %d spans, depth %d, %d cycles", run.Label, len(run.Spans), depth, run.Cycles)
	}
}

// TestUntracedRequestCollectsNoSpans pins the opt-in contract: span
// markers shift trace-chunk boundaries, so an untraced request must not
// pay for (or report) any tracing.
func TestUntracedRequestCollectsNoSpans(t *testing.T) {
	r := NewRunner(TestScale())
	cell := DefaultCell(sim.FatCamp, OLTP, false)
	cell.WarmRefs = 10000
	res, err := r.Run(context.Background(), Request{
		Mode: ModeStagedOLTP, Clients: 4, Txns: 2, Cell: &cell,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 0 {
		t.Fatalf("untraced request returned %d trace runs", len(res.Traces))
	}
}
