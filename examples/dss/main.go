// DSS example: the paper's Figure 6 in miniature — sweep the shared L2
// size under a fixed "free" 4-cycle latency and under the Cacti-model
// latency, on the TPC-H-like scan/join mix. Large caches stop paying for
// themselves once realistic hit latency is charged.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	runner := core.NewRunner(core.TestScale())
	fmt.Println("saturated TPC-H-like workload on the FC CMP, 16 clients")
	fmt.Printf("%6s %10s %12s %12s %10s\n", "L2 MB", "hit lat", "IPC @4cyc", "IPC @Cacti", "L2hit CPI")

	pts, err := runner.Figure6(core.DSS, []int{1, 4, 8, 16, 26})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, p := range pts {
		fmt.Printf("%6d %10d %12.2f %12.2f %10.3f\n",
			p.L2MB, p.LatReal, p.ThroughputConst, p.ThroughputReal, p.CPIL2Hit)
	}
	fmt.Println("\nThe const-latency column is the conventional wisdom: more cache, more")
	fmt.Println("throughput. The Cacti column charges the physical cost of capacity;")
	fmt.Println("the growing L2-hit CPI component is the paper's shifted bottleneck.")
}
