// Staged example: Section 6.3's opportunity — the same scan→filter→sum
// pipeline executed four ways: monolithic Volcano, staged with STEPS-style
// packet batching on one context, staged across three cores, and staged
// across three contexts of one lean-camp core (producer/consumer binding).
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	runner := core.NewRunner(core.TestScale())
	res, err := runner.StagedExperiment(30000)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("scan -> filter -> aggregate over lineitem (30k rows)")
	fmt.Printf("%-18s %12s %8s %10s %10s\n", "mode", "cycles", "comp", "L2hit D", "L1D hit%")
	var base uint64
	for _, m := range res {
		if m.Mode == "volcano" {
			base = m.Cycles
		}
	}
	for _, m := range res {
		speedup := float64(base) / float64(m.Cycles)
		fmt.Printf("%-18s %12d %7.0f%% %9.1f%% %9.1f%%  (%.2fx)\n",
			m.Mode, m.Cycles, m.CompFrac*100, m.DStallL2Frac*100, m.L1DHitRate*100, speedup)
	}
	fmt.Println("\nstaged-parallel exploits otherwise-idle cores (parallelism);")
	fmt.Println("staged-colocated keeps packets L1-resident between producer and")
	fmt.Println("consumer (locality) — the two levers of the paper's Section 6.")
}
