// Quickstart: build a simulated chip, run a traced workload on it, and
// read the execution-time breakdown — the smallest end-to-end use of the
// library's public surface (sim + trace + mem).
package main

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// A 4-core fat-camp CMP with a 16 MB shared L2 at the Cacti-model
	// latency for that size (16 cycles).
	chip := sim.NewChip(sim.Config{
		Camp:  sim.FatCamp,
		Cores: 4,
		Hier: cache.Config{
			L2Size:    16 << 20,
			L2Lat:     16,
			SharedL2:  true,
			StreamBuf: true,
		},
	})

	// One synthetic software thread: a pointer chase over 4 MB (an
	// OLTP-like dependent access pattern over an L2-resident working set)
	// interleaved with compute.
	rec, stream := trace.Pipe()
	go func() {
		code := mem.CodeSeg{Base: mem.CodeBase, Size: 4096}
		addr := uint64(0)
		for i := 0; i < 600000 && !rec.Stopped(); i++ {
			rec.Exec(code, 24)
			rec.Load(mem.HeapBase+mem.Addr(addr), true) // dependent load
			addr = (addr*1664525 + 1013904223) % (4 << 20)
		}
		rec.Close()
	}()
	chip.AddThread(stream)

	// SimFlex-style: functionally warm the caches, then measure.
	chip.Warm(1200000)
	res := chip.Run(2_000_000)

	fmt.Printf("cycles:        %d\n", res.Cycles)
	fmt.Printf("instructions:  %d\n", res.Instructions)
	fmt.Printf("IPC:           %.3f\n", res.IPC())
	fmt.Println("breakdown of busy cycles:")
	fmt.Printf("  computation:      %5.1f%%\n", res.Breakdown.Frac(sim.KindComp)*100)
	fmt.Printf("  D-stall L2 hits:  %5.1f%%  <- the paper's emerging bottleneck\n",
		res.Breakdown.Frac(sim.KindDStallL2)*100)
	fmt.Printf("  D-stall memory:   %5.1f%%\n", res.Breakdown.Frac(sim.KindDStallMem)*100)
	fmt.Printf("  other:            %5.1f%%\n", res.Breakdown.Frac(sim.KindOther)*100)
	fmt.Printf("L1D hit rate:  %.1f%%   L2 miss rate: %.1f%%\n",
		100*float64(res.Cache.L1DHits)/float64(res.Cache.L1DHits+res.Cache.L1DMisses),
		res.Cache.L2MissRate()*100)
}
