// OLTP example: the paper's Figure 4/5 comparison in miniature — the same
// saturated TPC-C-like workload on a fat-camp and a lean-camp chip, showing
// the lean camp hiding data stalls that dominate the fat camp's time.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	runner := core.NewRunner(core.TestScale())
	fmt.Println("saturated TPC-C-like workload, 26MB shared L2, 64 clients")
	fmt.Printf("%-5s %10s %8s %9s %9s %8s\n", "camp", "IPC", "comp", "D-stall", "I-stall", "other")

	var fc, lc float64
	for _, camp := range []sim.Camp{sim.FatCamp, sim.LeanCamp} {
		cell := core.DefaultCell(camp, core.OLTP, true)
		cell.WarmRefs = 150000
		cell.WindowCycles = 250000
		res, err := runner.RunCell(cell)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		comp, is, ds, oth := res.FracBreakdown()
		fmt.Printf("%-5v %10.2f %7.0f%% %8.0f%% %8.0f%% %7.0f%%\n",
			camp, res.Throughput, comp*100, ds*100, is*100, oth*100)
		if camp == sim.FatCamp {
			fc = res.Throughput
		} else {
			lc = res.Throughput
		}
	}
	fmt.Printf("\nLC/FC throughput: %.2fx (paper: ~1.7x on saturated workloads)\n", lc/fc)
	fmt.Println("The multithreaded in-order chip overlaps data stalls with work from")
	fmt.Println("other contexts; the out-of-order chip cannot, because OLTP's pointer")
	fmt.Println("chases (B+tree descents, lock and bucket chains) serialize its misses.")
}
