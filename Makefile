# Mirrors the CI jobs (.github/workflows/ci.yml) so tier-1 is one
# command locally: `make` runs build + lint + test.

GO ?= go

.PHONY: all build test race bench bench-share lint fmt

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Shared vs unshared aggregate-throughput smoke (8 simulated clients).
bench-share:
	$(GO) test -run '^$$' -bench '^BenchmarkSharedScan$$' -benchtime=1x .

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

fmt:
	gofmt -w .
