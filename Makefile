# Mirrors the CI jobs (.github/workflows/ci.yml) so tier-1 is one
# command locally: `make` runs build + lint + test.

GO ?= go

.PHONY: all build test race bench bench-share bench-vec bench-oltp bench-oltp-mt bench-native bench-json serve server-smoke lint fmt

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Shared vs unshared aggregate-throughput smoke (8 simulated clients).
bench-share:
	$(GO) test -run '^$$' -bench '^BenchmarkSharedScan$$' -benchtime=1x .

# Vectorized-executor smoke: gates Q6 scan throughput at >= 1.5x the
# row-at-a-time path on the simulated 4-core FC chip.
bench-vec:
	$(GO) test -run '^$$' -bench '^BenchmarkVectorized$$' -benchtime=1x .

# Staged-OLTP smoke: gates the STEPS-style cohort executor at >= 5x
# fewer simulated L1I misses than the monolithic path, with
# byte-identical transaction effects.
bench-oltp:
	$(GO) test -run '^$$' -bench '^BenchmarkStagedOLTP$$' -benchtime=1x .

# Partitioned staged-OLTP smoke: the cohort scheduler split by home
# warehouse across {1, 2, 4} workers on a 4-warehouse mix — parts=2 must
# beat parts=1 on simulated cycles and parts=4 must reach >= 2x, with
# every digest byte-identical to the monolithic reference.
bench-oltp-mt:
	$(GO) test -run '^$$' -bench '^BenchmarkStagedOLTPParallel$$' -benchtime=1x .

# Native fast-path gate: at 1 worker Q6 with compiled predicates +
# selection vectors must beat the interpreted path >= 1.5x, the
# zero-copy (page-aliasing) path >= 1.9x over interpreted and >= 1.25x
# over copying; Q13's compiled join kernels over borrowed scans must
# beat interpreted >= 1.3x; the partitioned and prefetch join modes
# must each beat the chained native path >= 1.15x (best-of-3, digests
# byte-identical across modes) and simulated Q13 must show a strictly
# lower partitioned D-stall fraction; 4 workers must scale >= 2.5x over 1 when the
# host actually has 4 CPUs (the scaling assertion is skipped on smaller
# runners — a 1-CPU container cannot express parallel speedup). The gate
# appends a benchstat-style copy-vs-borrow summary to bench-native.txt
# (CI archives it as an artifact).
bench-native:
	BENCH_NATIVE=1 BENCH_NATIVE_OUT=$(CURDIR)/bench-native.txt \
		$(GO) test -run '^TestNativeSpeedupGate$$' -count=1 -v ./internal/core/

# Machine-readable perf trajectory: the native fast-path sweep (compiled
# vs interpreted, copy vs zero-copy, worker scaling, median+IQR and
# effective GB/s per point), rows/sec + simulated vectorized/row
# speedups for scan, aggregate, join, plus the staged-OLTP comparison and
# the partitioned-OLTP scaling sweep, plus the Q13 join-mode points
# (schema v7), into BENCH_pr10.json (archived as a CI artifact so later
# PRs can diff executor performance).
bench-json:
	$(GO) run ./cmd/benchjson -pr pr10-joinmodes -out BENCH_pr10.json

# Run the execution server on :8080 (POST /v1/query, POST /v1/txn,
# GET /v1/jobs/{id}, GET /healthz, GET /metrics).
serve:
	$(GO) run ./cmd/dbserver

# End-to-end server smoke: build dbserver, serve one DSS query and one
# OLTP batch over HTTP, check /metrics counters are live, SIGTERM
# mid-load, require a clean graceful-drain exit.
server-smoke:
	./scripts/server_smoke.sh

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

fmt:
	gofmt -w .
