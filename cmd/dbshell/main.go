// Command dbshell exercises the database engine natively (no simulation):
// it loads the TPC-C-like and TPC-H-like databases, runs transactions and
// the four query analogs, and prints results — demonstrating that the
// engine underneath the characterization is a real, correct engine.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/workload"
)

func main() {
	txns := flag.Int("txns", 2000, "TPC-C-like transactions to run")
	lineitems := flag.Int("lineitems", 100000, "TPC-H-like lineitem rows")
	flag.Parse()

	if err := run(*txns, *lineitems); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(txns, lineitems int) error {
	fmt.Println("== OLTP: TPC-C-like ==")
	start := time.Now()
	w, err := workload.BuildTPCC(workload.TPCCConfig{Warehouses: 2, Items: 5000, CustPerDis: 200, ArenaBytes: 128 << 20})
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d-warehouse database in %s\n", w.Cfg.Warehouses, time.Since(start).Truncate(time.Millisecond))

	ctx := w.DB.NewCtx(nil, 0, 4<<20)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var counts workload.MixCounts
	start = time.Now()
	for i := 0; i < txns; i++ {
		if err := w.RunOne(ctx, rng, &counts); err != nil {
			return err
		}
	}
	dur := time.Since(start)
	fmt.Printf("ran %d transactions in %s (%.0f txn/s native)\n",
		counts.Total(), dur.Truncate(time.Millisecond), float64(counts.Total())/dur.Seconds())
	fmt.Printf("mix: NewOrder=%d Payment=%d OrderStatus=%d Delivery=%d StockLevel=%d deadlockRetries=%d\n",
		counts.NewOrder, counts.Payment, counts.OrderStatus, counts.Delivery, counts.StockLevel, counts.Deadlocks)

	fmt.Println("\n== DSS: TPC-H-like ==")
	start = time.Now()
	h, err := workload.BuildTPCH(workload.TPCHConfig{Lineitems: lineitems, ArenaBytes: 192 << 20})
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d lineitem rows in %s\n", lineitems, time.Since(start).Truncate(time.Millisecond))

	qctx := h.DB.NewCtx(nil, 1, 96<<20)
	params := workload.RandomParams(rng)
	for _, q := range workload.Queries {
		qctx.Work.Reset()
		start = time.Now()
		rows, err := h.RunQuery(qctx, q, params)
		if err != nil {
			return err
		}
		fmt.Printf("\nQ%d analog: %d result rows in %s\n", q, len(rows), time.Since(start).Truncate(time.Millisecond))
		printRows(rows, 5)
	}
	return nil
}

func printRows(rows [][]engine.Value, max int) {
	for i, r := range rows {
		if i == max {
			fmt.Printf("  ... (%d more)\n", len(rows)-max)
			return
		}
		fmt.Print("  ")
		for j, v := range r {
			if j > 0 {
				fmt.Print(" | ")
			}
			fmt.Print(v)
		}
		fmt.Println()
	}
}
