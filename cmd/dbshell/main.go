// Command dbshell exercises the database engine natively (no simulation):
// it loads the TPC-C-like and TPC-H-like databases, runs transactions and
// the four query analogs, and prints results — demonstrating that the
// engine underneath the characterization is a real, correct engine.
//
// -workers N runs the scan-heavy analogs on the morsel-driven parallel
// executor; -share routes queries through the cross-query work-sharing
// subsystem (circular shared scans + result reuse) and, with -clients K,
// compares shared against unshared multi-client throughput.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime/pprof"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/oltp"
	"repro/internal/workload"
)

func main() {
	var opts cli.Options
	opts.RegisterNative(flag.CommandLine)
	flag.Parse()

	if err := dispatch(&opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// dispatch routes the mode flags, bracketing the whole run with a CPU
// profile when -cpuprofile is given (deferred so the profile is flushed
// on error paths too).
func dispatch(opts *cli.Options) error {
	if opts.CPUProfile != "" {
		f, err := os.Create(opts.CPUProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	counts, err := opts.NativeWorkerCounts()
	if err != nil {
		return err
	}
	if len(counts) > 0 {
		return runNative(opts.Lineitems, counts, opts.ZeroCopy, opts.JoinMode)
	}
	if opts.Steps {
		return runSteps(opts.Txns, opts.Cohort, opts.Parts, opts.Remote)
	}
	return run(opts.Txns, opts.Lineitems, opts.Workers, opts.Share, opts.Clients, opts.Row)
}

// runNative sweeps the trace-free fast path over Q1/Q6/Q13: the
// interpreted 1-worker reference first, then compiled predicates +
// selection vectors at each requested worker count — each count twice
// (copying, then borrowed page-aliasing blocks) when zeroCopy is set.
// On Q13 an empty joinMode measures the three hash-join strategies
// (chained, partitioned, prefetch) side by side; a named mode pins it.
func runNative(lineitems int, counts []int, zeroCopy bool, joinMode string) error {
	jm, err := engine.ParseJoinMode(joinMode)
	if err != nil {
		return err
	}
	fmt.Println("== Native fast path: compiled predicates + selection vectors ==")
	scale := core.FullScale()
	scale.TPCH = workload.TPCHConfig{Lineitems: lineitems, ArenaBytes: 256 << 20}
	r := core.NewRunner(scale)

	start := time.Now()
	if _, err := r.TPCH(); err != nil {
		return err
	}
	fmt.Printf("loaded %d lineitem rows in %s\n", lineitems, time.Since(start).Truncate(time.Millisecond))

	for _, q := range []int{1, 6, 13} {
		var modes []engine.JoinMode
		if q == 13 {
			if joinMode == "" {
				modes = []engine.JoinMode{engine.JoinChained, engine.JoinPartitioned, engine.JoinPrefetch}
			} else {
				modes = []engine.JoinMode{jm}
			}
		}
		runs, err := r.RunNativeDSS(q, counts, 7, zeroCopy, modes...)
		if err != nil {
			return err
		}
		fmt.Println()
		var ref core.NativeRun
		// Baselines for the ratio columns: the 1-worker copying point per
		// join mode, and the chained point per (workers, flavor) pair.
		w1 := map[string]core.NativeRun{}
		chained := map[[2]int]int64{}
		for _, n := range runs {
			if n.JoinMode == engine.JoinChained.String() && !n.Interpreted {
				b := 0
				if n.Borrowed {
					b = 1
				}
				chained[[2]int{n.Workers, b}] = n.Nanos
			}
		}
		for _, n := range runs {
			switch {
			case n.Interpreted:
				ref = n
			case n.Workers == 1 && !n.Borrowed:
				w1[n.JoinMode] = n
			}
			label := "compiled   "
			switch {
			case n.Interpreted:
				label = "interpreted"
			case n.Borrowed:
				label = "zero-copy  "
			}
			if len(modes) > 1 && !n.Interpreted {
				label += fmt.Sprintf(" %-11s", n.JoinMode)
			}
			line := fmt.Sprintf("Q%-2d %s x%d: %6.1fM rows/s %5.1f GB/s (%d result rows, best of 50, median %s iqr %s)",
				q, label, n.Workers, n.RowsPerSec/1e6, n.GBPerSec, n.ResultRows,
				time.Duration(n.MedianNanos).Truncate(time.Microsecond),
				time.Duration(n.IQRNanos).Truncate(time.Microsecond))
			if !n.Interpreted && ref.Nanos > 0 && n.Workers == 1 && !n.Borrowed {
				line += fmt.Sprintf("  %.2fx vs interpreted", float64(ref.Nanos)/float64(n.Nanos))
			}
			if n.Borrowed && n.Workers == 1 && w1[n.JoinMode].Nanos > 0 {
				line += fmt.Sprintf("  %.2fx vs copy", float64(w1[n.JoinMode].Nanos)/float64(n.Nanos))
			}
			if n.Workers > 1 && w1[n.JoinMode].Nanos > 0 {
				line += fmt.Sprintf("  %.2fx vs x1", float64(w1[n.JoinMode].Nanos)/float64(n.Nanos))
			}
			if len(modes) > 1 && n.JoinMode != engine.JoinChained.String() && !n.Interpreted {
				b := 0
				if n.Borrowed {
					b = 1
				}
				if base := chained[[2]int{n.Workers, b}]; base > 0 {
					line += fmt.Sprintf("  %.2fx vs chained", float64(base)/float64(n.Nanos))
				}
			}
			fmt.Println(line)
		}
	}
	return nil
}

// runSteps executes the same deterministic transaction stream on fresh
// databases — monolithically, cohort-scheduled, and (with parts > 1)
// partitioned across native scheduler workers — and reports native
// throughput, scheduler behaviour, and the state-digest matches.
func runSteps(total, cohort, parts, remotePct int) error {
	fmt.Println("== Staged OLTP (STEPS): monolithic vs cohort-scheduled ==")
	cfg := workload.TPCCConfig{Warehouses: 4, Items: 5000, CustPerDis: 200, ArenaBytes: 128 << 20}
	clients := 16
	per := total / clients
	if per < 1 {
		per = 1
	}

	build := func() (*workload.TPCC, []workload.TxnInput, error) {
		w, err := workload.BuildTPCC(cfg)
		if err != nil {
			return nil, nil, err
		}
		return w, w.StagedInputsMix(clients, per, 7, remotePct), nil
	}

	mono, ins, err := build()
	if err != nil {
		return err
	}
	start := time.Now()
	mst, err := oltp.RunMonolithic(mono.DB.NewCtx(nil, 0, 4<<20), mono.StagedPrograms(ins, false))
	if err != nil {
		return err
	}
	mdur := time.Since(start)
	mdig, err := mono.StateDigest()
	if err != nil {
		return err
	}

	coh, _, err := build()
	if err != nil {
		return err
	}
	sched := oltp.NewScheduler(coh.DB.Codes, oltp.Config{Cohort: cohort, Generation: coh.Mgr.LM.Generation})
	start = time.Now()
	cst, err := sched.Run(coh.DB.NewCtx(nil, 0, 4<<20), coh.StagedPrograms(ins, true))
	if err != nil {
		return err
	}
	cdur := time.Since(start)
	cdig, err := coh.StateDigest()
	if err != nil {
		return err
	}

	fmt.Printf("inputs: %d clients x %d transactions (deterministic seed, %d%% remote)\n", clients, per, remotePct)
	fmt.Printf("monolithic: %d txns in %s (%.0f txn/s native)\n",
		mst.Committed, mdur.Truncate(time.Microsecond), float64(mst.Committed)/mdur.Seconds())
	fmt.Printf("cohort %2d:  %d txns in %s (%.0f txn/s native)\n",
		cohort, cst.Committed, cdur.Truncate(time.Microsecond), float64(cst.Committed)/cdur.Seconds())
	fmt.Printf("scheduler: %d quanta, %d stage switches, %d steps, %d parks, %d wounds, %d deadlocks\n",
		cst.Quanta, cst.StageSwitches, cst.Steps, cst.Parks, cst.Wounds, cst.Deadlocks)
	if mdig != cdig {
		return fmt.Errorf("state digest mismatch: monolithic %#x vs cohort %#x", mdig, cdig)
	}
	fmt.Printf("state digests match: %#x\n", mdig)

	if parts <= 1 {
		return nil
	}
	pw, _, err := build()
	if err != nil {
		return err
	}
	plan := pw.PartitionPlan(ins, parts)
	ctxs := make([]*engine.Ctx, parts)
	for p := range ctxs {
		ctxs[p] = pw.DB.NewCtx(nil, p, 4<<20)
	}
	start = time.Now()
	per2, err := oltp.RunPartitioned(ctxs, pw.DB.Codes, pw.StagedPrograms(ins, true), plan,
		oltp.Config{Cohort: oltp.SplitWindow(cohort, parts), Generation: pw.Mgr.LM.Generation})
	if err != nil {
		return err
	}
	pdur := time.Since(start)
	pdig, err := pw.StateDigest()
	if err != nil {
		return err
	}
	var pst oltp.Stats
	for _, s := range per2 {
		pst.Add(s)
	}
	fmt.Printf("parts %2d:   %d txns in %s (%.0f txn/s native, %d cross-partition fenced)\n",
		parts, pst.Committed, pdur.Truncate(time.Microsecond), float64(pst.Committed)/pdur.Seconds(), len(plan.Fences()))
	for p, s := range per2 {
		fmt.Printf("  part %d: %4d txns, %5d steps, %4d parks, %3d wounds\n",
			p, s.Committed, s.Steps, s.Parks, s.Wounds)
	}
	if pdig != mdig {
		return fmt.Errorf("state digest mismatch: partitioned %#x vs monolithic %#x", pdig, mdig)
	}
	fmt.Printf("partitioned digest matches: %#x\n", pdig)
	return nil
}

func run(txns, lineitems, workers int, shared bool, clients int, rowPlans bool) error {
	fmt.Println("== OLTP: TPC-C-like ==")
	start := time.Now()
	w, err := workload.BuildTPCC(workload.TPCCConfig{Warehouses: 2, Items: 5000, CustPerDis: 200, ArenaBytes: 128 << 20})
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d-warehouse database in %s\n", w.Cfg.Warehouses, time.Since(start).Truncate(time.Millisecond))

	ctx := w.DB.NewCtx(nil, 0, 4<<20)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var counts workload.MixCounts
	start = time.Now()
	for i := 0; i < txns; i++ {
		if err := w.RunOne(ctx, rng, &counts); err != nil {
			return err
		}
	}
	dur := time.Since(start)
	fmt.Printf("ran %d transactions in %s (%.0f txn/s native)\n",
		counts.Total(), dur.Truncate(time.Millisecond), float64(counts.Total())/dur.Seconds())
	fmt.Printf("mix: NewOrder=%d Payment=%d OrderStatus=%d Delivery=%d StockLevel=%d deadlockRetries=%d\n",
		counts.NewOrder, counts.Payment, counts.OrderStatus, counts.Delivery, counts.StockLevel, counts.Deadlocks)

	fmt.Println("\n== DSS: TPC-H-like ==")
	start = time.Now()
	h, err := workload.BuildTPCH(workload.TPCHConfig{Lineitems: lineitems, ArenaBytes: 192 << 20})
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d lineitem rows in %s\n", lineitems, time.Since(start).Truncate(time.Millisecond))

	var env *workload.ShareEnv
	if shared {
		env = h.NewShareEnv()
	}
	var pctxs []*engine.Ctx
	if workers > 1 {
		for i := 0; i < workers; i++ {
			pctxs = append(pctxs, h.DB.NewCtx(nil, 64+i, 48<<20))
		}
	}

	qctx := h.DB.NewCtx(nil, 1, 96<<20)
	params := workload.RandomParams(rng)
	for _, q := range workload.Queries {
		qctx.Work.Reset()
		for _, pc := range pctxs {
			pc.Work.Reset()
		}
		start = time.Now()
		var rows [][]engine.Value
		mode := "serial-vectorized"
		switch {
		case shared && (q == 1 || q == 6 || q == 13):
			mode = "shared-scan"
			rows, err = h.RunQueryShared(qctx, q, params, env)
		case workers > 1 && (q == 1 || q == 6):
			mode = fmt.Sprintf("parallel x%d", workers)
			rows, err = h.RunQueryParallel(pctxs, q, params)
		case rowPlans:
			mode = "serial-row"
			rows, err = h.RunQueryRow(qctx, q, params)
		default:
			rows, err = h.RunQuery(qctx, q, params)
		}
		if err != nil {
			return err
		}
		fmt.Printf("\nQ%d analog (%s): %d result rows in %s\n", q, mode, len(rows), time.Since(start).Truncate(time.Millisecond))
		printRows(rows, 5)
	}

	if shared && clients > 1 {
		fmt.Printf("\n== Work sharing: %d concurrent clients, Q1/Q6/Q13 mix ==\n", clients)
		un, err := h.RunConcurrentDSS(clients, 2, nil, 7)
		if err != nil {
			return err
		}
		sh, err := h.RunConcurrentDSS(clients, 2, h.NewShareEnv(), 7)
		if err != nil {
			return err
		}
		fmt.Printf("unshared: %d queries in %s (%.1f q/s)\n",
			un.Queries, un.Elapsed.Truncate(time.Millisecond), un.Throughput())
		fmt.Printf("shared:   %d queries in %s (%.1f q/s)\n",
			sh.Queries, sh.Elapsed.Truncate(time.Millisecond), sh.Throughput())
		if sh.Elapsed > 0 {
			fmt.Printf("host-time gain: %.2fx\n", un.Elapsed.Seconds()/sh.Elapsed.Seconds())
		}
		fmt.Printf("sharing: %d rotations over %d attaches, %d pages scanned; cache %d hits / %d misses\n",
			sh.Scans.Rotations, sh.Scans.Attaches, sh.Scans.PagesScanned, sh.Cache.Hits, sh.Cache.Misses)
	}
	return nil
}

func printRows(rows [][]engine.Value, max int) {
	for i, r := range rows {
		if i == max {
			fmt.Printf("  ... (%d more)\n", len(rows)-max)
			return
		}
		fmt.Print("  ")
		for j, v := range r {
			if j > 0 {
				fmt.Print(" | ")
			}
			fmt.Print(v)
		}
		fmt.Println()
	}
}
