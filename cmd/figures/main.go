// Command figures regenerates every table and figure of the paper's
// evaluation as text tables.
//
// Usage:
//
//	figures [-exp all|table1|fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|staged] [-scale full|test]
//
// Absolute numbers come from the reproduction's simulator and scaled-down
// datasets; the shapes (who wins, by what factor, where crossovers fall)
// are the reproduction targets. See EXPERIMENTS.md for paper-vs-measured.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, fig1..fig8, staged)")
	scale := flag.String("scale", "full", "workload scale: full or test")
	flag.Parse()

	var sc core.Scale
	switch *scale {
	case "full":
		sc = core.FullScale()
	case "test":
		sc = core.TestScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	r := core.NewRunner(sc)

	all := map[string]func(*core.Runner) error{
		"table1": table1, "fig1": fig1, "fig2": fig2, "fig3": fig3,
		"fig4": fig4, "fig5": fig5, "fig6": fig6, "fig7": fig7,
		"fig8": fig8, "staged": stagedExp,
	}
	order := []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "staged"}

	run := func(name string) {
		fn, ok := all[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		if err := fn(r); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("  [%s in %s]\n\n", name, time.Since(start).Truncate(time.Millisecond))
	}

	if *exp == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(*exp)
}

func header(title string) {
	fmt.Println(title)
	fmt.Println(strings.Repeat("-", len(title)))
}

func table1(*core.Runner) error {
	header("Table 1: chip multiprocessor camp characteristics")
	fmt.Printf("%-18s %-18s %-18s\n", "Core Technology", "Fat Camp (FC)", "Lean Camp (LC)")
	rows := []struct {
		name string
		get  func(core.CampSpec) string
	}{
		{"Issue Width", func(c core.CampSpec) string { return c.IssueWidth }},
		{"Execution Order", func(c core.CampSpec) string { return c.ExecOrder }},
		{"Pipeline Depth", func(c core.CampSpec) string { return c.PipelineDepth }},
		{"Hardware Threads", func(c core.CampSpec) string { return c.HWThreads }},
		{"Core Size", func(c core.CampSpec) string { return c.CoreSize }},
	}
	for _, row := range rows {
		fmt.Printf("%-18s %-18s %-18s\n", row.name, row.get(core.Camps[0]), row.get(core.Camps[1]))
	}
	return nil
}

func fig1(*core.Runner) error {
	header("Figure 1a: historic on-chip cache sizes")
	fmt.Printf("%-6s %-28s %10s %8s\n", "Year", "Processor", "Cache KB", "Hit cyc")
	for _, h := range core.Historic {
		lat := "-"
		if h.HitCycles > 0 {
			lat = fmt.Sprintf("%d", h.HitCycles)
		}
		fmt.Printf("%-6d %-28s %10d %8s\n", h.Year, h.Processor, h.CacheKB, lat)
	}
	fmt.Println()
	header("Figure 1b: Cacti-model latency vs size (physical trend)")
	pts, err := core.CactiCurve()
	if err != nil {
		return err
	}
	fmt.Printf("%10s %8s %10s %10s\n", "Size KB", "Cycles", "Area mm2", "Leak mW")
	for _, p := range pts {
		fmt.Printf("%10d %8d %10.1f %10.0f\n", p.SizeKB, p.Cycles, p.Area, p.Leakage)
	}
	return nil
}

func fig2(r *core.Runner) error {
	header("Figure 2: throughput vs concurrent clients (DSS on FC CMP)")
	pts, err := r.Figure2(nil)
	if err != nil {
		return err
	}
	base := pts[0].Throughput
	fmt.Printf("%8s %12s %12s\n", "Clients", "IPC", "Norm")
	for _, p := range pts {
		fmt.Printf("%8d %12.3f %12.2f\n", p.Clients, p.Throughput, p.Throughput/base)
	}
	return nil
}

func fig3(r *core.Runner) error {
	header("Figure 3: simulator validation (timing sim vs analytical CPI)")
	v, err := r.Figure3()
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %10s %10s\n", "Component", "Simulated", "Analytic")
	fmt.Printf("%-12s %10.3f %10.3f\n", "Computation", v.Simulated.Computation, v.Analytic.Computation)
	fmt.Printf("%-12s %10.3f %10.3f\n", "I-stalls", v.Simulated.IStalls, v.Analytic.IStalls)
	fmt.Printf("%-12s %10.3f %10.3f\n", "D-stalls", v.Simulated.DStalls, v.Analytic.DStalls)
	fmt.Printf("%-12s %10.3f %10.3f\n", "Other", v.Simulated.Other, v.Analytic.Other)
	fmt.Printf("%-12s %10.3f %10.3f   (error %.1f%%; paper reports <5%% vs hardware)\n",
		"Total CPI", v.Simulated.Total, v.Analytic.Total, v.ErrPct)
	return nil
}

func fig4(r *core.Runner) error {
	header("Figure 4: LC normalized to FC")
	res, err := r.Figure4()
	if err != nil {
		return err
	}
	fmt.Printf("(a) response time, unsaturated:   OLTP %.2fx   DSS %.2fx   (paper: ~1.12x, up to 1.7x)\n",
		res.UnsatOLTP, res.UnsatDSS)
	fmt.Printf("(b) throughput, saturated:        OLTP %.2fx   DSS %.2fx   (paper: ~1.7x)\n",
		res.SatOLTP, res.SatDSS)
	return nil
}

func fig5(r *core.Runner) error {
	header("Figure 5: execution time breakdown (26MB shared L2)")
	cells, err := r.Figure5()
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-6s %-6s %8s %8s %8s %8s %10s\n",
		"Saturation", "Wkld", "Camp", "Comp", "I-stall", "D-stall", "Other", "IPC")
	for _, c := range cells {
		comp, is, ds, oth := c.FracBreakdown()
		sat := "unsat"
		if c.Cell.Saturated {
			sat = "sat"
		}
		fmt.Printf("%-10s %-6v %-6v %7.0f%% %7.0f%% %7.0f%% %7.0f%% %10.2f\n",
			sat, c.Cell.Workload, c.Cell.Camp, comp*100, is*100, ds*100, oth*100, c.Throughput)
	}
	return nil
}

func fig6(r *core.Runner) error {
	for _, wk := range []core.WorkloadKind{core.OLTP, core.DSS} {
		header(fmt.Sprintf("Figure 6: L2 size sweep, %v on FC CMP (const 4-cycle vs Cacti latency)", wk))
		pts, err := r.Figure6(wk, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%6s %8s %12s %12s %10s %10s %10s\n",
			"L2 MB", "lat cyc", "IPC const", "IPC real", "CPI total", "CPI D", "CPI L2hit")
		for _, p := range pts {
			fmt.Printf("%6d %8d %12.3f %12.3f %10.3f %10.3f %10.3f\n",
				p.L2MB, p.LatReal, p.ThroughputConst, p.ThroughputReal,
				p.CPITotal, p.CPIDStall, p.CPIL2Hit)
		}
		fmt.Println()
	}
	return nil
}

func fig7(r *core.Runner) error {
	header("Figure 7: SMP (4x private 4MB L2) vs CMP (shared 16MB L2), FC, saturated")
	fmt.Printf("%-6s %10s %10s %14s %16s\n", "Wkld", "CPI SMP", "CPI CMP", "SMP coh CPI", "L2hit CPI ratio")
	for _, wk := range []core.WorkloadKind{core.OLTP, core.DSS} {
		res, err := r.Figure7(wk)
		if err != nil {
			return err
		}
		fmt.Printf("%-6v %10.3f %10.3f %14.3f %15.1fx\n",
			wk, res.CPISMP, res.CPICMP, res.CoherenceCPISMP, res.L2HitCPIRatio)
	}
	fmt.Println("(paper: CPI 1.40->1.01 OLTP, 1.95->1.46 DSS; L2-hit component grows ~7x)")
	return nil
}

func fig8(r *core.Runner) error {
	header("Figure 8: throughput vs core count (16MB shared L2, FC, saturated)")
	for _, wk := range []core.WorkloadKind{core.OLTP, core.DSS} {
		pts, err := r.Figure8(wk, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%v:\n%8s %12s %10s %10s %12s %14s\n",
			wk, "Cores", "IPC", "Speedup", "Linear", "L2 miss%", "Queue cycles")
		for _, p := range pts {
			fmt.Printf("%8d %12.3f %10.2f %10d %11.2f%% %14d\n",
				p.Cores, p.Throughput, p.Speedup, p.Cores, p.L2MissRate*100, p.QueueCycles)
		}
	}
	return nil
}

func stagedExp(r *core.Runner) error {
	header("Section 6: staged execution (scan->filter->aggregate over lineitem)")
	res, err := r.StagedExperiment(0)
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %12s %8s %8s %10s %10s\n",
		"Mode", "Cycles", "Comp", "I-stall", "L2hit D", "L1D hit%")
	for _, m := range res {
		fmt.Printf("%-18s %12d %7.0f%% %7.0f%% %9.1f%% %9.1f%%\n",
			m.Mode, m.Cycles, m.CompFrac*100, m.IStallFrac*100,
			m.DStallL2Frac*100, m.L1DHitRate*100)
	}
	fmt.Println("(volcano/affinity: one context; parallel: three FC cores; colocated: three contexts of one LC core)")
	return nil
}
