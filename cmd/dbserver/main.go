// Command dbserver serves the unified execution API over HTTP/JSON:
// POST /v1/query runs a DSS measurement, POST /v1/txn a staged-OLTP
// transaction batch (add "async": true to either body for a pollable
// job on GET /v1/jobs/{id}), GET /metrics exposes Prometheus-style
// counters, and GET /healthz reports liveness. Results are byte-
// identical to batch-mode core.Runner.Run on the same request — the
// server is a transport, not a different engine.
//
// On SIGTERM or SIGINT the server drains gracefully: it stops admitting
// (healthz flips to 503 so load balancers fail it out), waits up to
// -drain-timeout for admitted executions to finish, then shuts the
// listener down and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.String("scale", "full", "workload scale: full or test")
	maxInflight := flag.Int("max-inflight", 8, "global cap on admitted sessions")
	perTenant := flag.Int("per-tenant", 4, "per-tenant cap on admitted sessions (X-Tenant header)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max wait for in-flight work on shutdown")
	flag.Parse()

	var sc core.Scale
	switch *scale {
	case "full":
		sc = core.FullScale()
	case "test":
		sc = core.TestScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (have full, test)\n", *scale)
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Scale: &sc, MaxInFlight: *maxInflight, PerTenant: *perTenant,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "dbserver: listening on %s (scale=%s, max-inflight=%d, per-tenant=%d)\n",
			*addr, *scale, *maxInflight, *perTenant)
		errCh <- hs.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "dbserver: draining (no new work admitted)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "dbserver: %v (abandoning in-flight work)\n", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "dbserver: shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "dbserver: final counters:")
	srv.Metrics.WritePrometheus(os.Stderr)
	fmt.Fprintln(os.Stderr, "dbserver: drained; bye")
}
