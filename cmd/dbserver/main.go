// Command dbserver serves the unified execution API over HTTP/JSON:
// POST /v1/query runs a DSS measurement, POST /v1/txn a staged-OLTP
// transaction batch (add "async": true to either body for a pollable
// job on GET /v1/jobs/{id}, "trace": true for a Chrome trace on
// GET /v1/jobs/{id}/trace), GET /metrics exposes Prometheus-style
// counters and latency histograms, and GET /healthz reports liveness.
// Results are byte-identical to batch-mode core.Runner.Run on the same
// request — the server is a transport, not a different engine.
//
// On SIGTERM or SIGINT the server drains gracefully: it stops admitting
// (healthz flips to 503 so load balancers fail it out), waits up to
// -drain-timeout for admitted executions to finish, then shuts the
// listener down and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.String("scale", "full", "workload scale: full or test")
	maxInflight := flag.Int("max-inflight", 8, "global cap on admitted sessions")
	perTenant := flag.Int("per-tenant", 4, "per-tenant cap on admitted sessions (X-Tenant header)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max wait for in-flight work on shutdown")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, or error")
	debugAddr := flag.String("debug-addr", "", "optional net/http/pprof listen address (off when empty)")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var sc core.Scale
	switch *scale {
	case "full":
		sc = core.FullScale()
	case "test":
		sc = core.TestScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (have full, test)\n", *scale)
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Scale: &sc, MaxInFlight: *maxInflight, PerTenant: *perTenant,
		Logger: logger,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *debugAddr != "" {
		// The pprof mux is http.DefaultServeMux (blank net/http/pprof
		// import); serve it on its own listener so profiling endpoints
		// never share the API port.
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "scale", *scale,
			"max_inflight", *maxInflight, "per_tenant", *perTenant)
		errCh <- hs.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("draining; no new work admitted")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logger.Warn("drain incomplete; abandoning in-flight work", "err", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "err", err)
	}
	fmt.Fprintln(os.Stderr, "dbserver: final counters:")
	srv.Metrics.WritePrometheus(os.Stderr)
	logger.Info("drained; bye")
}
