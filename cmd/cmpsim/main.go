// Command cmpsim runs one chip-multiprocessor simulation cell — a camp,
// workload, and configuration — and prints its execution-time breakdown,
// the unit of analysis throughout the paper.
//
// Examples:
//
//	cmpsim -camp lc -workload oltp -clients 64 -l2mb 26
//	cmpsim -camp fc -workload dss -unsaturated -query 6
//	cmpsim -camp fc -workload oltp -smp -l2mb 4   # Figure 7's SMP node
//	cmpsim -camp fc -workload dss -workers 4 -query 1   # morsel-parallel Q1
//	cmpsim -camp fc -workload dss -clients 8 -share     # cross-query work sharing
//	cmpsim -camp fc -workload oltp -steps -cohort 16    # STEPS-style staged OLTP
//	cmpsim -camp fc -workload oltp -steps -parts 4      # partitioned staged OLTP
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	campFlag := flag.String("camp", "fc", "core camp: fc (out-of-order) or lc (multithreaded in-order)")
	wkFlag := flag.String("workload", "oltp", "workload: oltp or dss")
	unsat := flag.Bool("unsaturated", false, "single client, response-time mode")
	clients := flag.Int("clients", 0, "saturated client count (0 = paper default)")
	cores := flag.Int("cores", 4, "cores on chip")
	l2mb := flag.Int("l2mb", 26, "L2 size in MB")
	l2lat := flag.Int("l2lat", 0, "L2 hit latency in cycles (0 = Cacti model)")
	smp := flag.Bool("smp", false, "private L2 per core (SMP) instead of shared (CMP)")
	query := flag.Int("query", 6, "DSS query analog for unsaturated runs (1, 6, 13, 16)")
	workers := flag.Int("workers", 0, "run one DSS query on the morsel-driven parallel executor with N workers (1 and 6; 13 runs the parallel-join core)")
	shareFlag := flag.Bool("share", false, "compare -clients concurrent DSS clients with and without cross-query work sharing (shared circular scans + result reuse); -query picks 1, 6, 13, or 0 for the mix")
	vecFlag := flag.Bool("vec", false, "compare one serial DSS query on the vectorized executor against the row-at-a-time reference path (identical chip geometry); -query picks 1, 6, or 13")
	stepsFlag := flag.Bool("steps", false, "compare monolithic OLTP execution against the STEPS-style cohort-scheduled staged executor (identical chip geometry, identical transaction inputs, byte-identical effects); -clients sets logical client streams, -cohort the in-flight window")
	cohortFlag := flag.Int("cohort", 16, "in-flight transactions for -steps cohort scheduling")
	txnsFlag := flag.Int("txns", 8, "transactions per logical client for -steps")
	partsFlag := flag.Int("parts", 1, "with -steps: partition the cohort scheduler by home warehouse across N workers (one per simulated core) and report scaling vs 1 partition")
	remoteFlag := flag.Int("remote", 0, "with -steps: percent chance a NewOrder line / Payment customer is drawn from a remote warehouse (cross-partition transactions are fenced)")
	window := flag.Uint64("window", 400000, "measured window in cycles (saturated)")
	warm := flag.Int("warm", 400000, "functional-warming refs per thread")
	scale := flag.String("scale", "full", "workload scale: full or test")
	flag.Parse()

	var camp sim.Camp
	switch *campFlag {
	case "fc":
		camp = sim.FatCamp
	case "lc":
		camp = sim.LeanCamp
	default:
		fmt.Fprintf(os.Stderr, "unknown camp %q\n", *campFlag)
		os.Exit(2)
	}
	var wk core.WorkloadKind
	switch *wkFlag {
	case "oltp":
		wk = core.OLTP
	case "dss":
		wk = core.DSS
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wkFlag)
		os.Exit(2)
	}
	sc := core.FullScale()
	if *scale == "test" {
		sc = core.TestScale()
	}

	cell := core.DefaultCell(camp, wk, !*unsat)
	cell.Cores = *cores
	cell.L2Size = *l2mb << 20
	cell.L2Lat = *l2lat
	cell.SharedL2 = !*smp
	cell.UnsatQuery = *query
	cell.WindowCycles = *window
	cell.WarmRefs = *warm
	if *clients > 0 {
		cell.Clients = *clients
	}
	// Unsaturated DSS runs measure one query to completion; the saturated
	// warming default would consume a whole vectorized test-scale query
	// before measurement starts. OLTP unsaturated runs keep the heavy
	// default (their transaction stream is effectively unbounded).
	if *unsat && wk == core.DSS && !flagWasSet("warm") {
		cell.WarmRefs = 50000
		if *scale == "test" {
			cell.WarmRefs = 20000
		}
	}

	if *stepsFlag {
		if wk != core.OLTP {
			fmt.Fprintln(os.Stderr, "-steps requires -workload oltp (staged transaction execution)")
			os.Exit(2)
		}
		if !flagWasSet("warm") {
			cell.WarmRefs = 10000
		}
		clientsN := *clients
		if clientsN <= 0 {
			clientsN = 8
		}
		runSteps(core.NewRunner(sc), cell, clientsN, *txnsFlag, *cohortFlag, *partsFlag, *remoteFlag)
		return
	}

	if *vecFlag {
		if wk != core.DSS {
			fmt.Fprintln(os.Stderr, "-vec requires -workload dss (vectorized query execution)")
			os.Exit(2)
		}
		if !flagWasSet("warm") {
			cell.WarmRefs = 5000
		}
		runVec(core.NewRunner(sc), cell, *query)
		return
	}

	if *shareFlag {
		if wk != core.DSS {
			fmt.Fprintln(os.Stderr, "-share requires -workload dss (cross-query work sharing)")
			os.Exit(2)
		}
		k := *clients
		if k <= 0 {
			k = 8
		}
		if !flagWasSet("warm") {
			// Shared consumers' traces are short (they skip the decode);
			// a heavy warm would consume a larger fraction of the shared
			// side than of the private side and bias the comparison.
			cell.WarmRefs = 20000
		}
		runShare(core.NewRunner(sc), cell, *query, k)
		return
	}

	if *workers > 0 {
		if wk != core.DSS {
			fmt.Fprintln(os.Stderr, "-workers requires -workload dss (intra-query parallelism)")
			os.Exit(2)
		}
		// The saturated -warm default would consume a whole test-scale
		// query during functional warming; parallel runs measure to
		// completion, so default to a light warm unless -warm was given.
		if !flagWasSet("warm") {
			cell.WarmRefs = 50000
		}
		runParallel(core.NewRunner(sc), cell, *query, *workers)
		return
	}

	fmt.Printf("cell: %v  (L2 hit latency %d cycles)\n", cell, cell.SimConfig().Hier.L2Lat)
	r := core.NewRunner(sc)
	res, err := r.Run(cell)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	b := res.Result.Breakdown
	fmt.Printf("\ncycles measured:    %d\n", res.Result.Cycles)
	fmt.Printf("instructions:       %d\n", res.Result.Instructions)
	fmt.Printf("throughput (IPC):   %.3f\n", res.Throughput)
	if !cell.Saturated {
		fmt.Printf("response (cycles):  %.0f per %v unit\n", res.ResponseCycles, wk)
	}
	fmt.Printf("work completed:     %d\n", res.Work)
	fmt.Println("\nexecution time breakdown (busy core cycles):")
	rows := []struct {
		name string
		kind sim.StallKind
	}{
		{"computation", sim.KindComp},
		{"I-stall (L2 hit)", sim.KindIStallL2},
		{"I-stall (memory)", sim.KindIStallMem},
		{"D-stall (L2 hit)", sim.KindDStallL2},
		{"D-stall (memory)", sim.KindDStallMem},
		{"D-stall (coherence)", sim.KindDStallCoh},
		{"other (branch/sched)", sim.KindOther},
	}
	for _, row := range rows {
		fmt.Printf("  %-22s %6.1f%%\n", row.name, b.Frac(row.kind)*100)
	}
	st := res.Result.Cache
	fmt.Println("\nmemory system:")
	fmt.Printf("  L1D hit rate:      %.1f%%\n", pct(st.L1DHits, st.L1DHits+st.L1DMisses))
	fmt.Printf("  L1I hit rate:      %.1f%%\n", pct(st.L1IHits, st.L1IHits+st.L1IMisses))
	fmt.Printf("  L2 miss rate:      %.1f%%\n", st.L2MissRate()*100)
	fmt.Printf("  L1-to-L1 xfers:    %d\n", st.L1Transfers)
	fmt.Printf("  coherence xfers:   %d\n", st.CohTransfers)
	fmt.Printf("  port queue cycles: %d\n", st.PortQueueCycles)
}

// runParallel measures one query on the morsel-driven executor at 1 and
// at N workers — on the same chip geometry, taken from cell so -cores,
// -l2mb, -l2lat, -smp and -warm apply — printing cycles and the
// intra-query speedup.
func runParallel(r *core.Runner, cell core.Cell, query, workers int) {
	res, speedup, err := r.ParallelSpeedup(cell, query, []int{1, workers}, 7)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("morsel-parallel q%d on %v (%d cores, %d MB L2):\n",
		query, cell.Camp, max(cell.Cores, workers), cell.L2Size>>20)
	for _, p := range res {
		fmt.Printf("  %2d worker(s): %12d cycles  (%d rows, IPC %.3f)\n",
			p.Workers, p.Cycles, p.Rows, p.Result.IPC())
	}
	fmt.Printf("  speedup %dw over 1w: %.2fx\n", workers, speedup)
}

// runVec measures one serial query on the row-at-a-time reference
// operators and on the vectorized executor, on identical chip geometry,
// printing cycles for both and the vectorized speedup.
func runVec(r *core.Runner, cell core.Cell, query int) {
	row, vec, speedup, err := r.VectorizedSpeedup(cell, query, 7)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("vectorized executor, q%d on %v (%d cores, %d MB L2):\n",
		query, cell.Camp, cell.Cores, cell.L2Size>>20)
	for _, res := range []core.VecDSSResult{row, vec} {
		mode := "row-at-a-time (Volcano)"
		if res.Vectorized {
			mode = "vectorized   (blocks) "
		}
		fmt.Printf("  %s %12d cycles  (%d rows, IPC %.3f, %d instr)\n",
			mode, res.Cycles, res.Rows, res.Result.IPC(), res.Result.Instructions)
	}
	fmt.Printf("  vectorized speedup: %.2fx\n", speedup)
}

// runSteps measures the same deterministic transaction stream executed
// monolithically and cohort-scheduled (STEPS) on identical chip geometry
// and prints the paired comparison: the staged path must cut L1I misses
// and instruction stalls while producing byte-identical database state.
// With parts > 1 it additionally runs the cohort side partitioned by home
// warehouse across that many scheduler workers and prints the scaling
// against the single-worker cohort run.
func runSteps(r *core.Runner, cell core.Cell, clients, perClient, cohort, parts, remotePct int) {
	opts := core.StagedOLTPOpts{Clients: clients, PerClient: perClient, Cohort: cohort, RemotePct: remotePct}
	fmt.Printf("staged OLTP (STEPS), %d clients x %d txns, cohort %d, on %v (%d cores, %d MB L2):\n",
		clients, perClient, cohort, cell.Camp, cell.Cores, cell.L2Size>>20)

	// Two instruction-delivery regimes on otherwise identical geometry:
	// with stream buffers the synthetic sequential code walks prefetch
	// almost perfectly and the footprint win shows up in miss counts;
	// without them (real OLTP control flow is branchy, the paper's
	// I-stalls persist despite prefetching) it shows up in cycles too.
	for _, sb := range []bool{true, false} {
		c := cell
		c.StreamBuf = sb
		label := "stream buffers on "
		if !sb {
			label = "stream buffers off"
		}
		fmt.Printf("\n  [%s]\n", label)

		if parts <= 1 {
			mono, coh, missRed, speedup, err := r.StagedOLTPSpeedup(c, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			printStepsPair(mono, coh)
			fmt.Printf("  L1I miss reduction: %.2fx   speedup: %.2fx\n", missRed, speedup)
			fmt.Printf("  state digests: monolithic %#x == cohort %#x\n", mono.Digest, coh.Digest)
			printSchedStats(coh)
			continue
		}

		mono, runs, scaling, err := r.StagedOLTPScaling(c, opts, []int{1, parts})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printStepsPair(mono, runs[0])
		for i, run := range runs[1:] {
			fmt.Printf("  cohort x%d partitions          %10d cycles  %6d L1I misses  %5.1f%% istall  %7.2f txn/Mcycle  (%.2fx vs 1 part, %d fenced)\n",
				run.Parts, run.Cycles, run.Result.Cache.L1IMisses, run.IStallFrac()*100,
				run.TxnsPerMcycle(), scaling[i+1], run.Fenced)
			for p, st := range run.PerPart {
				fmt.Printf("    part %d: %3d txns, %4d steps, %3d parks, %2d wounds\n",
					p, st.Committed, st.Steps, st.Parks, st.Wounds)
			}
		}
		fmt.Printf("  state digests: all runs == monolithic %#x\n", mono.Digest)
		printSchedStats(runs[len(runs)-1])
	}
}

// printStepsPair prints the monolithic and single-worker cohort rows.
func printStepsPair(mono, coh core.StagedOLTPResult) {
	for _, res := range []core.StagedOLTPResult{mono, coh} {
		mode := "monolithic (per-txn code bodies)"
		if res.Cohorted {
			mode = "cohort     (shared stage segs) "
		}
		fmt.Printf("  %s %10d cycles  %6d L1I misses  %5.1f%% istall  %7.2f txn/Mcycle\n",
			mode, res.Cycles, res.Result.Cache.L1IMisses, res.IStallFrac()*100, res.TxnsPerMcycle())
	}
}

// printSchedStats prints the cohort run's summed scheduler counters.
func printSchedStats(coh core.StagedOLTPResult) {
	s := coh.Sched
	fmt.Printf("  scheduler: %d quanta, %d stage switches, %d steps, %d parks, %d wounds, %d deadlocks\n",
		s.Quanta, s.StageSwitches, s.Steps, s.Parks, s.Wounds, s.Deadlocks)
}

// flagWasSet reports whether the named flag was given on the command line.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runShare measures K concurrent DSS clients with and without the
// cross-query work-sharing subsystem on identical chip geometry and
// prints aggregate throughput for both, plus the sharing internals.
func runShare(r *core.Runner, cell core.Cell, query, clients int) {
	un, sh, ratio, err := r.SharedSpeedup(cell, query, clients, 7)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	qname := fmt.Sprintf("q%d", query)
	if query == 0 {
		qname = "q1/q6/q13 mix"
	}
	fmt.Printf("cross-query work sharing, %s, %d clients on %v (%d cores, %d MB L2):\n",
		qname, clients, cell.Camp, cell.Cores, cell.L2Size>>20)
	for _, res := range []core.SharedDSSResult{un, sh} {
		mode := "unshared (private scans)"
		if res.Shared {
			mode = "shared   (circular scans)"
		}
		fmt.Printf("  %s %12d cycles  %7.3f queries/Mcycle  (IPC %.3f, %d rows)\n",
			mode, res.Cycles, res.Throughput(), res.Result.IPC(), res.Rows)
	}
	fmt.Printf("  aggregate throughput gain: %.2fx\n", ratio)
	fmt.Printf("  sharing: %d attaches, %d rotations, %d producer runs, %d pages scanned, %d batches\n",
		sh.Scans.Attaches, sh.Scans.Rotations, sh.Scans.ProducerRuns, sh.Scans.PagesScanned, sh.Scans.Batches)
	fmt.Printf("  result cache: %d hits, %d misses\n", sh.Cache.Hits, sh.Cache.Misses)
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}
