// Command cmpsim runs one chip-multiprocessor simulation cell — a camp,
// workload, and configuration — and prints its execution-time breakdown,
// the unit of analysis throughout the paper. The executor-comparison
// modes (-vec, -share, -workers, -steps) are clients of the unified
// core.Request/core.Result API, the same surface cmd/dbserver exposes
// over HTTP.
//
// Examples:
//
//	cmpsim -camp lc -workload oltp -clients 64 -l2mb 26
//	cmpsim -camp fc -workload dss -unsaturated -query 6
//	cmpsim -camp fc -workload oltp -smp -l2mb 4   # Figure 7's SMP node
//	cmpsim -camp fc -workload dss -workers 4 -query 1   # morsel-parallel Q1
//	cmpsim -camp fc -workload dss -clients 8 -share     # cross-query work sharing
//	cmpsim -camp fc -workload oltp -steps -cohort 16    # STEPS-style staged OLTP
//	cmpsim -camp fc -workload oltp -steps -parts 4      # partitioned staged OLTP
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// collected accumulates span runs across every unified-API invocation of
// this process (runSteps runs the request twice, once per instruction-
// delivery regime), for -trace-out.
var collected []obs.Run

// joinMetrics receives hash-join build observations (chain lengths,
// partition fan-out) from every traced DSS run of this process, backed
// by a private registry; printJoinStats renders it after joining runs.
var joinMetrics = obs.NewJoinMetrics(obs.NewRegistry())

func main() {
	var opts cli.Options
	opts.RegisterSim(flag.CommandLine)
	flag.Parse()

	sc, err := opts.ScaleCfg()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r := core.NewRunner(sc)
	r.Join = joinMetrics

	if mode, ok := opts.Mode(); ok {
		req, err := opts.Request()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		switch mode {
		case core.ModeStagedOLTP:
			runSteps(r, req)
		case core.ModeVecDSS:
			runVec(r, req)
		case core.ModeSharedDSS:
			runShare(r, req)
		case core.ModeParallelDSS:
			runParallel(r, req)
		}
		if opts.TraceOut != "" {
			if err := writeTrace(opts.TraceOut, collected); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	cell, err := opts.Cell()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	wk, _ := opts.WorkloadKind()
	fmt.Printf("cell: %v  (L2 hit latency %d cycles)\n", cell, cell.SimConfig().Hier.L2Lat)
	res, err := r.RunCell(cell)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	b := res.Result.Breakdown
	fmt.Printf("\ncycles measured:    %d\n", res.Result.Cycles)
	fmt.Printf("instructions:       %d\n", res.Result.Instructions)
	fmt.Printf("throughput (IPC):   %.3f\n", res.Throughput)
	if !cell.Saturated {
		fmt.Printf("response (cycles):  %.0f per %v unit\n", res.ResponseCycles, wk)
	}
	fmt.Printf("work completed:     %d\n", res.Work)
	fmt.Println("\nexecution time breakdown (busy core cycles):")
	rows := []struct {
		name string
		kind sim.StallKind
	}{
		{"computation", sim.KindComp},
		{"I-stall (L2 hit)", sim.KindIStallL2},
		{"I-stall (memory)", sim.KindIStallMem},
		{"D-stall (L2 hit)", sim.KindDStallL2},
		{"D-stall (memory)", sim.KindDStallMem},
		{"D-stall (coherence)", sim.KindDStallCoh},
		{"other (branch/sched)", sim.KindOther},
	}
	for _, row := range rows {
		fmt.Printf("  %-22s %6.1f%%\n", row.name, b.Frac(row.kind)*100)
	}
	st := res.Result.Cache
	fmt.Println("\nmemory system:")
	fmt.Printf("  L1D hit rate:      %.1f%%\n", pct(st.L1DHits, st.L1DHits+st.L1DMisses))
	fmt.Printf("  L1I hit rate:      %.1f%%\n", pct(st.L1IHits, st.L1IHits+st.L1IMisses))
	fmt.Printf("  L2 miss rate:      %.1f%%\n", st.L2MissRate()*100)
	fmt.Printf("  L1-to-L1 xfers:    %d\n", st.L1Transfers)
	fmt.Printf("  coherence xfers:   %d\n", st.CohTransfers)
	fmt.Printf("  port queue cycles: %d\n", st.PortQueueCycles)
}

// run executes one unified request, exiting on error.
func run(r *core.Runner, req core.Request) core.Result {
	res, err := r.Run(context.Background(), req)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	collected = append(collected, res.Traces...)
	return res
}

// writeTrace exports the collected span runs as Chrome trace-event JSON.
func writeTrace(path string, runs []obs.Run) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChrome(f, runs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	spans := 0
	for _, r := range runs {
		spans += len(r.Spans)
	}
	fmt.Printf("\nwrote %d spans across %d runs to %s (open in Perfetto / chrome://tracing)\n",
		spans, len(runs), path)
	return nil
}

// printStallMix prints one side's cycle-accounting mix: where its busy
// core cycles went, by the paper's stall taxonomy.
func printStallMix(indent string, s core.Side) {
	b := s.Result.Breakdown
	fmt.Printf("%scycle mix: %4.1f%% comp  %4.1f%% I-stall  %4.1f%% D-stall  %4.1f%% other  (%d idle cycles)\n",
		indent,
		b.Frac(sim.KindComp)*100,
		(b.Frac(sim.KindIStallL2)+b.Frac(sim.KindIStallMem))*100,
		(b.Frac(sim.KindDStallL2)+b.Frac(sim.KindDStallMem)+b.Frac(sim.KindDStallCoh))*100,
		b.Frac(sim.KindOther)*100, b.Idle())
	if st := s.Result.Cache; st.Prefetches > 0 {
		fmt.Printf("%sprefetch: %d issued, %d demand hits, %d caught in flight\n",
			indent, st.Prefetches, st.PrefetchHits, st.PrefetchLate)
	}
}

// printJoinStats prints the hash-join build internals collected across
// this process's traced runs — builds and partition fan-out by mode,
// plus the bucket-chain length distribution — and is a no-op when the
// run never built a join (Q1/Q6).
func printJoinStats() {
	h := joinMetrics.ChainLen
	if h.Count() == 0 {
		return
	}
	line := "  join builds:"
	for _, mode := range []string{"chained", "partitioned", "prefetch"} {
		if b := joinMetrics.Builds.With(mode).Value(); b > 0 {
			p := joinMetrics.Partitions.With(mode).Value()
			line += fmt.Sprintf("  %s x%d (fanout %.0f)", mode, b, float64(p)/float64(b))
		}
	}
	fmt.Println(line)
	fmt.Printf("  bucket chains: %d non-empty, mean length %.2f\n",
		h.Count(), h.Sum()/float64(h.Count()))
}

// runParallel measures one query on the morsel-driven executor at 1 and
// at N workers — on the same chip geometry, taken from the cell flags —
// printing cycles and the intra-query speedup.
func runParallel(r *core.Runner, req core.Request) {
	res := run(r, req)
	cell := req.Cell
	fmt.Printf("morsel-parallel q%d on %v (%d cores, %d MB L2):\n",
		req.Query, cell.Camp, max(cell.Cores, req.Workers), cell.L2Size>>20)
	for _, p := range res.Sweep {
		fmt.Printf("  %2d worker(s): %12d cycles  (%d rows, IPC %.3f)\n",
			p.Workers, p.Cycles, p.Rows, p.Result.IPC())
		printStallMix("    ", p)
	}
	fmt.Printf("  speedup %dw over 1w: %.2fx\n", res.Main.Workers, res.SpeedupX)
	printJoinStats()
}

// runVec measures one serial query on the row-at-a-time reference
// operators and on the vectorized executor, on identical chip geometry,
// printing cycles for both and the vectorized speedup.
func runVec(r *core.Runner, req core.Request) {
	res := run(r, req)
	cell := req.Cell
	fmt.Printf("vectorized executor, q%d on %v (%d cores, %d MB L2):\n",
		req.Query, cell.Camp, cell.Cores, cell.L2Size>>20)
	for _, s := range []core.Side{res.Baseline, res.Main} {
		mode := "row-at-a-time (Volcano)"
		if s.Label == "vectorized" {
			mode = "vectorized   (blocks) "
		}
		fmt.Printf("  %s %12d cycles  (%d rows, IPC %.3f, %d instr)\n",
			mode, s.Cycles, s.Rows, s.Result.IPC(), s.Result.Instructions)
		printStallMix("    ", s)
	}
	fmt.Printf("  vectorized speedup: %.2fx\n", res.SpeedupX)
	fmt.Printf("  result digests: row %#x == vectorized %#x\n", res.Baseline.Digest, res.Main.Digest)
	printJoinStats()
}

// runSteps measures the same deterministic transaction stream executed
// monolithically and cohort-scheduled (STEPS) on identical chip geometry
// and prints the paired comparison: the staged path must cut L1I misses
// and instruction stalls while producing byte-identical database state.
// With parts > 1 the request sweeps {1, parts} and prints the scaling
// against the single-worker cohort run.
func runSteps(r *core.Runner, req core.Request) {
	resolved := req.WithDefaults()
	fmt.Printf("staged OLTP (STEPS), %d clients x %d txns, cohort %d, on %v (%d cores, %d MB L2):\n",
		resolved.Clients, resolved.Txns, resolved.Cohort,
		req.Cell.Camp, req.Cell.Cores, req.Cell.L2Size>>20)

	// Two instruction-delivery regimes on otherwise identical geometry:
	// with stream buffers the synthetic sequential code walks prefetch
	// almost perfectly and the footprint win shows up in miss counts;
	// without them (real OLTP control flow is branchy, the paper's
	// I-stalls persist despite prefetching) it shows up in cycles too.
	for _, sb := range []bool{true, false} {
		cell := *req.Cell
		cell.StreamBuf = sb
		sreq := req
		sreq.Cell = &cell
		label := "stream buffers on "
		if !sb {
			label = "stream buffers off"
		}
		fmt.Printf("\n  [%s]\n", label)

		res := run(r, sreq)
		printStepsPair(res.Baseline, res.Sweep[0])
		if len(res.Sweep) > 1 {
			for i, s := range res.Sweep[1:] {
				fmt.Printf("  cohort x%d partitions          %10d cycles  %6d L1I misses  %5.1f%% istall  %7.2f txn/Mcycle  (%.2fx vs 1 part, %d fenced)\n",
					s.Parts, s.Cycles, s.Result.Cache.L1IMisses, s.IStallFrac()*100,
					s.PerMcycle(s.Txns), res.ScalingX[i+1], s.Fenced)
				for p, st := range s.PerPart {
					fmt.Printf("    part %d: %3d txns, %4d steps, %3d parks, %2d wounds\n",
						p, st.Committed, st.Steps, st.Parks, st.Wounds)
				}
			}
			fmt.Printf("  state digests: all runs == monolithic %#x\n", res.Baseline.Digest)
		} else {
			fmt.Printf("  L1I miss reduction: %.2fx   speedup: %.2fx\n", res.L1IMissReductionX, res.SpeedupX)
			fmt.Printf("  state digests: monolithic %#x == cohort %#x\n", res.Baseline.Digest, res.Main.Digest)
		}
		printSchedStats(res.Main)
	}
}

// printStepsPair prints the monolithic and single-worker cohort rows.
func printStepsPair(mono, coh core.Side) {
	for _, s := range []core.Side{mono, coh} {
		mode := "monolithic (per-txn code bodies)"
		if s.Label != "monolithic" {
			mode = "cohort     (shared stage segs) "
		}
		fmt.Printf("  %s %10d cycles  %6d L1I misses  %5.1f%% istall  %7.2f txn/Mcycle\n",
			mode, s.Cycles, s.Result.Cache.L1IMisses, s.IStallFrac()*100, s.PerMcycle(s.Txns))
		printStallMix("    ", s)
	}
}

// printSchedStats prints the cohort run's summed scheduler counters.
func printSchedStats(coh core.Side) {
	s := coh.Sched
	fmt.Printf("  scheduler: %d quanta, %d stage switches, %d steps, %d parks, %d wounds, %d deadlocks\n",
		s.Quanta, s.StageSwitches, s.Steps, s.Parks, s.Wounds, s.Deadlocks)
}

// runShare measures K concurrent DSS clients with and without the
// cross-query work-sharing subsystem on identical chip geometry and
// prints aggregate throughput for both, plus the sharing internals.
func runShare(r *core.Runner, req core.Request) {
	res := run(r, req)
	qname := fmt.Sprintf("q%d", req.Query)
	if req.Query == 0 {
		qname = "q1/q6/q13 mix"
	}
	clients := res.Request.Clients
	cell := req.Cell
	fmt.Printf("cross-query work sharing, %s, %d clients on %v (%d cores, %d MB L2):\n",
		qname, clients, cell.Camp, cell.Cores, cell.L2Size>>20)
	for _, s := range []core.Side{res.Baseline, res.Main} {
		mode := "unshared (private scans)"
		if s.Label == "shared" {
			mode = "shared   (circular scans)"
		}
		fmt.Printf("  %s %12d cycles  %7.3f queries/Mcycle  (IPC %.3f, %d rows)\n",
			mode, s.Cycles, s.PerMcycle(clients), s.Result.IPC(), s.Rows)
		printStallMix("    ", s)
	}
	sh := res.Main
	fmt.Printf("  aggregate throughput gain: %.2fx\n", res.SpeedupX)
	fmt.Printf("  sharing: %d attaches, %d rotations, %d producer runs, %d pages scanned, %d batches\n",
		sh.Scans.Attaches, sh.Scans.Rotations, sh.Scans.ProducerRuns, sh.Scans.PagesScanned, sh.Scans.Batches)
	fmt.Printf("  result cache: %d hits, %d misses\n", sh.Reuse.Hits, sh.Reuse.Misses)
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}
