// Command benchjson writes the machine-readable performance trajectory
// of the executors to a JSON file: native rows/sec of the vectorized vs
// row-at-a-time scan path, simulated vectorized-over-row speedups for the
// scan (Q6), aggregate (Q1), and join (Q13) analogs, and the staged-OLTP
// comparison (monolithic vs STEPS-style cohort scheduling: L1I misses,
// instruction stalls, throughput) on a 4-core FC chip. The PR label and
// output file come from flags so every PR appends its own BENCH_<pr>.json
// artifact; CI archives the file so later PRs can diff performance.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// toPoint converts one sweep measurement to its report form. The auto
// join mode is recorded as absence — only pinned modes are interesting.
func toPoint(n core.NativeRun) nativePoint {
	pt := nativePoint{
		Query: n.Query, Workers: n.Workers,
		Interpreted: n.Interpreted, Borrowed: n.Borrowed,
		RowsScanned: n.Rows, ElapsedSec: float64(n.Nanos) / 1e9,
		MedianSec: float64(n.MedianNanos) / 1e9, IQRSec: float64(n.IQRNanos) / 1e9,
		RowsPerSec:   n.RowsPerSec,
		BytesScanned: n.BytesScanned, GBPerSec: n.GBPerSec,
		ResultRows: n.ResultRows,
		Digest:     fmt.Sprintf("%016x", n.Digest),
	}
	if n.JoinMode != "" && n.JoinMode != "auto" {
		pt.JoinMode = n.JoinMode
	}
	return pt
}

// simEntry is one simulated vectorized-vs-row measurement.
type simEntry struct {
	Query       int         `json:"query"`
	RowCycles   uint64      `json:"row_cycles"`
	VecCycles   uint64      `json:"vec_cycles"`
	RowInstr    uint64      `json:"row_instructions"`
	VecInstr    uint64      `json:"vec_instructions"`
	SpeedupX    float64     `json:"speedup_x"`
	ResultRows  int         `json:"result_rows"`
	Description string      `json:"description"`
	RowStalls   core.Stalls `json:"row_stalls"`
	VecStalls   core.Stalls `json:"vec_stalls"`
}

// nativeEntry is one host-time scan-throughput measurement.
type nativeEntry struct {
	Path       string  `json:"path"`
	Rows       int     `json:"rows_scanned"`
	ElapsedSec float64 `json:"elapsed_sec"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

// oltpSide is one executor of the staged-OLTP pair.
type oltpSide struct {
	Mode          string      `json:"mode"`
	Cycles        uint64      `json:"cycles"`
	Instructions  uint64      `json:"instructions"`
	L1IMisses     uint64      `json:"l1i_misses"`
	IStallFrac    float64     `json:"istall_frac"`
	Txns          int         `json:"txns"`
	TxnsPerMcycle float64     `json:"txns_per_mcycle"`
	Stalls        core.Stalls `json:"stalls"`
}

// oltpEntry is one paired staged-OLTP measurement (fixed chip geometry,
// identical transaction inputs, byte-identical final state).
type oltpEntry struct {
	StreamBuffers    bool     `json:"stream_buffers"`
	Monolithic       oltpSide `json:"monolithic"`
	Cohort           oltpSide `json:"cohort"`
	L1IMissReduction float64  `json:"l1i_miss_reduction_x"`
	SpeedupX         float64  `json:"speedup_x"`
	// DigestMatch is an invariant, not a measurement: StagedOLTPSpeedup
	// fails (and no file is written) on any digest mismatch, so a report
	// that exists always records true here.
	DigestMatch bool `json:"digest_match"`
	Parks       int  `json:"parks"`
	Wounds      int  `json:"wounds"`
}

// oltpPartSide is one partition count of the partitioned staged-OLTP
// scaling sweep.
type oltpPartSide struct {
	Parts         int         `json:"parts"`
	Cycles        uint64      `json:"cycles"`
	L1IMisses     uint64      `json:"l1i_misses"`
	Parks         int         `json:"parks"`
	Wounds        int         `json:"wounds"`
	Fenced        int         `json:"fenced_txns"`
	TxnsPerMcycle float64     `json:"txns_per_mcycle"`
	ScalingX      float64     `json:"scaling_vs_1part_x"`
	Stalls        core.Stalls `json:"stalls"`
}

// oltpPartEntry is the partitioned staged-OLTP measurement: the cohort
// executor partitioned by home warehouse across N scheduler workers on a
// 4-warehouse mix, every run's digest byte-identical to the monolithic
// reference (StagedOLTPScaling fails, and no file is written, otherwise —
// so DigestMatch records an invariant, like oltpEntry's).
type oltpPartEntry struct {
	Warehouses  int            `json:"warehouses"`
	Clients     int            `json:"clients"`
	PerClient   int            `json:"per_client"`
	RemotePct   int            `json:"remote_pct"`
	DigestMatch bool           `json:"digest_match"`
	Parts       []oltpPartSide `json:"parts"`
}

// nativePoint is one native fast-path sweep point: query Query at
// Workers morsel-parallel workers, wall-clock best of 50 (median and
// interquartile range record the spread). The leading interpreted point
// (compiled predicates, hash kernels, and selection vectors off) is the
// reference the 1-worker compiled_vs_interpreted_x ratio divides
// against; multi-worker points carry scaling_vs_1worker_x instead.
// Borrowed points alias buffer-pool pages (zero-copy) and carry
// borrow_vs_copy_x against the copying point at the same worker count.
type nativePoint struct {
	Query       int     `json:"query"`
	Workers     int     `json:"workers"`
	Interpreted bool    `json:"interpreted"`
	Borrowed    bool    `json:"borrowed"`
	RowsScanned int     `json:"rows_scanned"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	MedianSec   float64 `json:"median_sec"`
	IQRSec      float64 `json:"iqr_sec"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	// BytesScanned is base-table bytes per run (rows × row width);
	// GBPerSec the effective scan bandwidth at the best wall time.
	BytesScanned int     `json:"bytes_scanned"`
	GBPerSec     float64 `json:"gb_per_sec"`
	ResultRows   int     `json:"result_rows"`
	// Digest fingerprints the result rows: typed-value FNV for serial
	// points (byte-identical across interpreted/compiled/borrowed), a
	// row-count digest for multi-worker points whose float sums
	// reassociate.
	Digest    string  `json:"digest"`
	CompiledX float64 `json:"compiled_vs_interpreted_x,omitempty"`
	ScalingX  float64 `json:"scaling_vs_1worker_x,omitempty"`
	BorrowX   float64 `json:"borrow_vs_copy_x,omitempty"`
	// JoinMode is the hash-join strategy the point pinned (chained,
	// partitioned, prefetch); empty for non-join sweeps and the auto
	// policy.
	JoinMode string `json:"join_mode,omitempty"`
}

// joinModeSection is the Q13 join-mode comparison: one point per mode ×
// copy/borrow flavor at one worker, the borrowed-flavor speedups of the
// cache-conscious modes over the chained table, and the simulated
// D-stall (L2+mem) fraction of busy cycles per mode — the paper's
// stall-taxonomy view of what partitioning buys.
type joinModeSection struct {
	Query        int           `json:"query"`
	Points       []nativePoint `json:"points"`
	PartitionedX float64       `json:"partitioned_vs_chained_x"`
	PrefetchX    float64       `json:"prefetch_vs_chained_x"`
	// SimDStallFrac maps join mode to the simulated D-stall fraction;
	// SimStalls carries the full core.Stalls breakdown per mode.
	SimDStallFrac map[string]float64     `json:"sim_dstall_frac"`
	SimStalls     map[string]core.Stalls `json:"sim_stalls"`
}

// nativeSection is the native fast-path sweep: every query × worker
// count (copy and zero-copy flavors), plus the host CPU count that
// contextualizes the scaling ratios (a 1-CPU CI runner cannot express
// parallel speedup).
type nativeSection struct {
	HostCPUs     int           `json:"host_cpus"`
	WorkerCounts []int         `json:"worker_counts"`
	Points       []nativePoint `json:"points"`
}

// report is the file's schema. Version bumps when fields change meaning.
// v4 adds per-side cycle-accounting stalls breakdowns (core.Stalls).
// v5 adds the native fast-path sweep (compiled predicates + selection
// vectors vs interpreted, morsel-parallel worker scaling) and host_cpus.
// v6 adds the zero-copy (borrowed) flavor per sweep point, median/IQR of
// the 50 timed runs, and effective scan bandwidth (bytes_scanned,
// gb_per_sec).
// v7 adds join_mode on native points and the q13_join_modes section:
// per-join-mode Q13 points, partitioned/prefetch-vs-chained ratios, and
// the simulated D-stall fraction per mode.
type report struct {
	Version     int             `json:"version"`
	PR          string          `json:"pr"`
	Scale       string          `json:"scale"`
	NativeFast  nativeSection   `json:"native"`
	JoinModes   joinModeSection `json:"q13_join_modes"`
	Native      []nativeEntry   `json:"native_q6"`
	Simulated   []simEntry      `json:"simulated"`
	OLTP        []oltpEntry     `json:"oltp_staged"`
	Partitioned []oltpPartEntry `json:"oltp_partitioned"`
}

func main() {
	pr := flag.String("pr", "pr9-zerocopy", "PR label recorded in the report")
	out := flag.String("out", "", "output file (default BENCH_<pr prefix>.json)")
	flag.Parse()
	if *out == "" {
		prefix, _, _ := strings.Cut(*pr, "-")
		*out = "BENCH_" + prefix + ".json"
	}

	r := core.NewRunner(core.TestScale())
	bg := context.Background()
	rep := report{Version: 7, PR: *pr, Scale: "test"}

	// Native fast path: the compiled+selection sweep over every native
	// query at 1/2/4 workers, led by the interpreted reference, each
	// count measured copying and zero-copy (borrowed) side by side.
	rep.NativeFast = nativeSection{HostCPUs: runtime.NumCPU(), WorkerCounts: []int{1, 2, 4}}
	for _, q := range []int{1, 6, 13} {
		runs, err := r.RunNativeDSS(q, rep.NativeFast.WorkerCounts, 7, true)
		if err != nil {
			fatal(err)
		}
		var interp, w1 core.NativeRun
		copyAt := map[int]core.NativeRun{}
		for _, n := range runs {
			switch {
			case n.Interpreted:
				interp = n
			case !n.Borrowed:
				copyAt[n.Workers] = n
				if n.Workers == 1 {
					w1 = n
				}
			}
		}
		for _, n := range runs {
			pt := toPoint(n)
			if !n.Interpreted && n.Workers == 1 && interp.Nanos > 0 {
				pt.CompiledX = float64(interp.Nanos) / float64(n.Nanos)
			}
			if n.Workers > 1 && w1.Nanos > 0 {
				pt.ScalingX = float64(w1.Nanos) / float64(n.Nanos)
			}
			if n.Borrowed {
				if cp, ok := copyAt[n.Workers]; ok && cp.Nanos > 0 {
					pt.BorrowX = float64(cp.Nanos) / float64(n.Nanos)
				}
			}
			rep.NativeFast.Points = append(rep.NativeFast.Points, pt)
		}
	}

	// Q13 join modes: the three strategies measured side by side at one
	// worker (copy and borrowed flavors), plus the simulated stall
	// taxonomy per mode — digests are byte-identical across modes by the
	// golden suite, so these points differ only in how fast they arrive.
	jmModes := []engine.JoinMode{engine.JoinChained, engine.JoinPartitioned, engine.JoinPrefetch}
	jmRuns, err := r.RunNativeDSS(13, []int{1}, 7, true, jmModes...)
	if err != nil {
		fatal(err)
	}
	rep.JoinModes = joinModeSection{
		Query:         13,
		SimDStallFrac: map[string]float64{},
		SimStalls:     map[string]core.Stalls{},
	}
	borrowed := map[string]core.NativeRun{}
	for _, n := range jmRuns[1:] {
		rep.JoinModes.Points = append(rep.JoinModes.Points, toPoint(n))
		if n.Borrowed {
			borrowed[n.JoinMode] = n
		}
	}
	if ch := borrowed["chained"]; ch.Nanos > 0 {
		if pa := borrowed["partitioned"]; pa.Nanos > 0 {
			rep.JoinModes.PartitionedX = float64(ch.Nanos) / float64(pa.Nanos)
		}
		if pf := borrowed["prefetch"]; pf.Nanos > 0 {
			rep.JoinModes.PrefetchX = float64(ch.Nanos) / float64(pf.Nanos)
		}
	}
	vecCell := core.DefaultModeCell(core.ModeVecDSS, sim.FatCamp)
	for _, m := range jmModes {
		res, err := r.RunVecDSS(vecCell, 13, true, 7, m)
		if err != nil {
			fatal(err)
		}
		s := core.StallsOf(res.Result)
		rep.JoinModes.SimStalls[m.String()] = s
		if s.Busy > 0 {
			rep.JoinModes.SimDStallFrac[m.String()] = float64(s.DStallL2+s.DStallMem) / float64(s.Busy)
		}
	}

	// Native: host-time Q6 on both executors (best of 3 runs each).
	h, err := r.TPCH()
	if err != nil {
		fatal(err)
	}
	ctx := h.DB.NewCtx(nil, 90, 96<<20)
	p := workload.RandomParams(rand.New(rand.NewSource(7)))
	for _, path := range []string{"row", "vectorized"} {
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			ctx.Work.Reset()
			start := time.Now()
			var err error
			if path == "row" {
				_, err = h.Q6Row(ctx, p)
			} else {
				_, err = h.Q6(ctx, p)
			}
			if err != nil {
				fatal(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		rows := r.ScaleCfg.TPCH.Lineitems
		rep.Native = append(rep.Native, nativeEntry{
			Path: path, Rows: rows, ElapsedSec: best.Seconds(),
			RowsPerSec: float64(rows) / best.Seconds(),
		})
	}

	// Simulated: vectorized-over-row cycle speedups for scan/agg/join,
	// measured through the unified request API (the same path dbserver
	// serves).
	descs := map[int]string{6: "scan (Q6)", 1: "aggregate (Q1)", 13: "join (Q13)"}
	cell := core.DefaultCell(sim.FatCamp, core.DSS, true)
	cell.WarmRefs = 5000
	for _, q := range []int{6, 1, 13} {
		c := cell
		res, err := r.Run(bg, core.Request{Mode: core.ModeVecDSS, Query: q, Seed: 7, Cell: &c})
		if err != nil {
			fatal(err)
		}
		rep.Simulated = append(rep.Simulated, simEntry{
			Query:     q,
			RowCycles: res.Baseline.Cycles, VecCycles: res.Main.Cycles,
			RowInstr: res.Baseline.Result.Instructions, VecInstr: res.Main.Result.Instructions,
			SpeedupX: res.SpeedupX, ResultRows: res.Main.Rows,
			Description: descs[q],
			RowStalls:   res.Baseline.Stalls(), VecStalls: res.Main.Stalls(),
		})
	}

	// Staged OLTP: monolithic vs cohort-scheduled (STEPS) on identical
	// geometry, under both instruction-delivery regimes.
	oltpCell := core.DefaultCell(sim.FatCamp, core.OLTP, false)
	oltpCell.WarmRefs = 10000
	for _, sb := range []bool{true, false} {
		cell := oltpCell
		cell.StreamBuf = sb
		res, err := r.Run(bg, core.Request{Mode: core.ModeStagedOLTP, Cell: &cell})
		if err != nil {
			fatal(err)
		}
		side := func(s core.Side) oltpSide {
			mode := "monolithic"
			if s.Label != "monolithic" {
				mode = "cohort"
			}
			return oltpSide{
				Mode: mode, Cycles: s.Cycles, Instructions: s.Result.Instructions,
				L1IMisses: s.Result.Cache.L1IMisses, IStallFrac: s.IStallFrac(),
				Txns: s.Txns, TxnsPerMcycle: s.PerMcycle(s.Txns),
				Stalls: s.Stalls(),
			}
		}
		rep.OLTP = append(rep.OLTP, oltpEntry{
			StreamBuffers: sb, Monolithic: side(res.Baseline), Cohort: side(res.Main),
			L1IMissReduction: res.L1IMissReductionX, SpeedupX: res.SpeedupX,
			DigestMatch: res.Baseline.Digest == res.Main.Digest,
			Parks:       res.Main.Sched.Parks, Wounds: res.Main.Sched.Wounds,
		})
	}

	// Partitioned staged OLTP: the canonical sweep (the same cell the CI
	// gate BenchmarkStagedOLTPParallel measures), scaling anchored
	// against the single-worker cohort run.
	sweep := core.DefaultPartitionSweep()
	partRunner := core.NewRunner(sweep.Scale)
	partCell := sweep.Cell
	partRes, err := partRunner.Run(bg, core.Request{
		Mode: core.ModeStagedOLTP, Clients: sweep.Opts.Clients, Txns: sweep.Opts.PerClient,
		Cohort: sweep.Opts.Cohort, Seed: sweep.Opts.Seed, RemotePct: sweep.Opts.RemotePct,
		PartCounts: sweep.Parts, Cell: &partCell,
	})
	if err != nil {
		fatal(err)
	}
	pe := oltpPartEntry{
		Warehouses: sweep.Scale.TPCC.Warehouses, Clients: sweep.Opts.Clients,
		PerClient: sweep.Opts.PerClient, RemotePct: sweep.Opts.RemotePct, DigestMatch: true,
	}
	for i, run := range partRes.Sweep {
		pe.Parts = append(pe.Parts, oltpPartSide{
			Parts: run.Parts, Cycles: run.Cycles,
			L1IMisses: run.Result.Cache.L1IMisses,
			Parks:     run.Sched.Parks, Wounds: run.Sched.Wounds, Fenced: run.Fenced,
			TxnsPerMcycle: run.PerMcycle(run.Txns), ScalingX: partRes.ScalingX[i],
			Stalls: run.Stalls(),
		})
	}
	rep.Partitioned = append(rep.Partitioned, pe)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	for _, p := range rep.NativeFast.Points {
		tag := "compiled"
		switch {
		case p.Interpreted:
			tag = "interpreted"
		case p.Borrowed:
			tag = "zero-copy"
		}
		extra := ""
		if p.CompiledX > 0 {
			extra = fmt.Sprintf("  %.2fx vs interpreted", p.CompiledX)
		}
		if p.ScalingX > 0 {
			extra = fmt.Sprintf("  %.2fx vs 1 worker", p.ScalingX)
		}
		if p.BorrowX > 0 {
			extra += fmt.Sprintf("  %.2fx vs copy", p.BorrowX)
		}
		fmt.Printf("  native q%-2d %-11s x%d %12.0f rows/sec %5.1f GB/s%s\n", p.Query, tag, p.Workers, p.RowsPerSec, p.GBPerSec, extra)
	}
	fmt.Printf("  q13 join modes: partitioned %.2fx, prefetch %.2fx vs chained (zero-copy)\n",
		rep.JoinModes.PartitionedX, rep.JoinModes.PrefetchX)
	for _, m := range []string{"chained", "partitioned", "prefetch"} {
		fmt.Printf("  q13 sim %-11s dstall frac %.4f\n", m, rep.JoinModes.SimDStallFrac[m])
	}
	for _, e := range rep.Simulated {
		fmt.Printf("  %-15s %6.2fx simulated speedup (%d -> %d cycles)\n", e.Description, e.SpeedupX, e.RowCycles, e.VecCycles)
	}
	for _, e := range rep.Native {
		fmt.Printf("  native q6 %-11s %12.0f rows/sec\n", e.Path, e.RowsPerSec)
	}
	for _, e := range rep.OLTP {
		sb := "sb-on "
		if !e.StreamBuffers {
			sb = "sb-off"
		}
		fmt.Printf("  oltp staged %s  %6.2fx fewer L1I misses, %5.2fx speedup, digests match=%v\n",
			sb, e.L1IMissReduction, e.SpeedupX, e.DigestMatch)
	}
	for _, e := range rep.Partitioned {
		for _, p := range e.Parts {
			fmt.Printf("  oltp partitioned x%d  %6.2fx vs 1 part (%d cycles, %d parks)\n",
				p.Parts, p.ScalingX, p.Cycles, p.Parks)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
