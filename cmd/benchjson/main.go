// Command benchjson writes the machine-readable performance trajectory
// of the vectorized executor to a JSON file (default BENCH_pr3.json):
// native rows/sec of the vectorized vs row-at-a-time scan path, plus
// simulated vectorized-over-row speedups for the scan (Q6), aggregate
// (Q1), and join (Q13) analogs on a 4-core FC chip. CI archives the file
// as an artifact so later PRs can diff executor performance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// simEntry is one simulated vectorized-vs-row measurement.
type simEntry struct {
	Query       int     `json:"query"`
	RowCycles   uint64  `json:"row_cycles"`
	VecCycles   uint64  `json:"vec_cycles"`
	RowInstr    uint64  `json:"row_instructions"`
	VecInstr    uint64  `json:"vec_instructions"`
	SpeedupX    float64 `json:"speedup_x"`
	ResultRows  int     `json:"result_rows"`
	Description string  `json:"description"`
}

// nativeEntry is one host-time scan-throughput measurement.
type nativeEntry struct {
	Path       string  `json:"path"`
	Rows       int     `json:"rows_scanned"`
	ElapsedSec float64 `json:"elapsed_sec"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

// report is the file's schema. Version bumps when fields change meaning.
type report struct {
	Version   int           `json:"version"`
	PR        string        `json:"pr"`
	Scale     string        `json:"scale"`
	Native    []nativeEntry `json:"native_q6"`
	Simulated []simEntry    `json:"simulated"`
}

func main() {
	out := flag.String("out", "BENCH_pr3.json", "output file")
	flag.Parse()

	r := core.NewRunner(core.TestScale())
	rep := report{Version: 1, PR: "pr3-vectorized-core", Scale: "test"}

	// Native: host-time Q6 on both executors (best of 3 runs each).
	h, err := r.TPCH()
	if err != nil {
		fatal(err)
	}
	ctx := h.DB.NewCtx(nil, 90, 96<<20)
	p := workload.RandomParams(rand.New(rand.NewSource(7)))
	for _, path := range []string{"row", "vectorized"} {
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			ctx.Work.Reset()
			start := time.Now()
			var err error
			if path == "row" {
				_, err = h.Q6Row(ctx, p)
			} else {
				_, err = h.Q6(ctx, p)
			}
			if err != nil {
				fatal(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		rows := r.ScaleCfg.TPCH.Lineitems
		rep.Native = append(rep.Native, nativeEntry{
			Path: path, Rows: rows, ElapsedSec: best.Seconds(),
			RowsPerSec: float64(rows) / best.Seconds(),
		})
	}

	// Simulated: vectorized-over-row cycle speedups for scan/agg/join.
	descs := map[int]string{6: "scan (Q6)", 1: "aggregate (Q1)", 13: "join (Q13)"}
	cell := core.DefaultCell(sim.FatCamp, core.DSS, true)
	cell.WarmRefs = 5000
	for _, q := range []int{6, 1, 13} {
		row, vec, speedup, err := r.VectorizedSpeedup(cell, q, 7)
		if err != nil {
			fatal(err)
		}
		rep.Simulated = append(rep.Simulated, simEntry{
			Query:     q,
			RowCycles: row.Cycles, VecCycles: vec.Cycles,
			RowInstr: row.Result.Instructions, VecInstr: vec.Result.Instructions,
			SpeedupX: speedup, ResultRows: vec.Rows,
			Description: descs[q],
		})
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	for _, e := range rep.Simulated {
		fmt.Printf("  %-15s %6.2fx simulated speedup (%d -> %d cycles)\n", e.Description, e.SpeedupX, e.RowCycles, e.VecCycles)
	}
	for _, e := range rep.Native {
		fmt.Printf("  native q6 %-11s %12.0f rows/sec\n", e.Path, e.RowsPerSec)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
